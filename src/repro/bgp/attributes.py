"""BGP path attributes.

SWIFT's inference works entirely off the AS-path attribute of announcements
and withdrawals, but to keep the substrate faithful we also model the other
attributes that drive the decision process (local preference, MED, origin,
communities) and that the paper mentions as obstacles to update packing
(communities, §2.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = ["ASPath", "Community", "Origin", "PathAttributes"]


class Origin(IntEnum):
    """BGP ORIGIN attribute; lower is preferred by the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


@dataclass(frozen=True, order=True)
class Community:
    """A standard BGP community ``asn:value``.

    The paper notes that widespread community usage defeats update packing
    because updates with distinct attribute sets cannot share a message.
    The synthetic trace generator attaches per-prefix communities for this
    reason.
    """

    asn: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.asn <= 0xFFFF:
            raise ValueError(f"community ASN {self.asn} out of 16-bit range")
        if not 0 <= self.value <= 0xFFFF:
            raise ValueError(f"community value {self.value} out of 16-bit range")

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"

    @classmethod
    def from_string(cls, text: str) -> "Community":
        """Parse ``"asn:value"``."""
        asn_text, _, value_text = text.partition(":")
        if not asn_text.isdigit() or not value_text.isdigit():
            raise ValueError(f"invalid community {text!r}")
        return cls(int(asn_text), int(value_text))


class ASPath:
    """An AS_PATH: an ordered sequence of AS numbers, nearest AS first.

    The path ``(2, 5, 6)`` means the advertising neighbor is AS 2, which
    reaches the origin AS 6 via AS 5 — exactly the orientation used in the
    paper's Fig. 1/Fig. 5.  AS-path *links* (pairs of adjacent ASes) are what
    the SWIFT inference algorithm scores, so this class exposes them
    directly via :meth:`links` and :meth:`links_with_positions`.
    """

    __slots__ = ("_asns", "_links", "_loop")

    def __init__(self, asns: Iterable[int]) -> None:
        asns = tuple(int(a) for a in asns)
        for asn in asns:
            if asn <= 0:
                raise ValueError(f"invalid AS number {asn}")
        self._asns = asns
        # Lazily-computed caches; paths are immutable and their links are
        # re-read on every RIB index update, so memoising them keeps the
        # replay hot path off the zip/canonicalise work.
        self._links: Optional[Tuple[Tuple[int, int], ...]] = None
        self._loop: Optional[bool] = None

    # -- accessors --------------------------------------------------------

    @property
    def asns(self) -> Tuple[int, ...]:
        """The AS numbers, nearest first."""
        return self._asns

    @property
    def origin_as(self) -> Optional[int]:
        """The AS originating the prefix (last element), or ``None`` if empty."""
        return self._asns[-1] if self._asns else None

    @property
    def first_hop(self) -> Optional[int]:
        """The neighbor AS the path was learned from, or ``None`` if empty."""
        return self._asns[0] if self._asns else None

    def __len__(self) -> int:
        return len(self._asns)

    def __iter__(self):
        return iter(self._asns)

    def __getitem__(self, index):
        return self._asns[index]

    def __contains__(self, asn: int) -> bool:
        return asn in self._asns

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASPath):
            return NotImplemented
        return self._asns == other._asns

    def __hash__(self) -> int:
        return hash(self._asns)

    def __reduce__(self):
        # Restore via the trusted fast path (skips re-validation; the lazy
        # link/loop caches rebuild on demand) — trace caches serialise
        # hundreds of thousands of paths.
        return (_restore_aspath, (self._asns,))

    def __repr__(self) -> str:
        return f"ASPath({list(self._asns)!r})"

    def __str__(self) -> str:
        return " ".join(str(asn) for asn in self._asns)

    # -- derived views ----------------------------------------------------

    def links(self) -> Tuple[Tuple[int, int], ...]:
        """Return the AS links (adjacent pairs) along the path.

        Links are returned in canonical (sorted endpoint) form because an
        AS adjacency is undirected for the purposes of failure inference.
        The tuple is computed once and cached (paths are immutable).
        """
        links = self._links
        if links is None:
            links = self._links = tuple(
                _canonical_link(a, b) for a, b in zip(self._asns, self._asns[1:])
            )
        return links

    def directed_links(self) -> List[Tuple[int, int]]:
        """Return the links in traversal order without canonicalisation."""
        return list(zip(self._asns, self._asns[1:]))

    def links_with_positions(self) -> List[Tuple[Tuple[int, int], int]]:
        """Return ``(link, position)`` pairs.

        Position numbering follows §5 of the paper: the link between the
        first and second AS of the path is at position 1 (the "depth 1"
        link adjacent to the SWIFTED router's neighbor), the next one at
        position 2, and so on.
        """
        return [
            (_canonical_link(a, b), index + 1)
            for index, (a, b) in enumerate(zip(self._asns, self._asns[1:]))
        ]

    def traverses(self, link: Tuple[int, int]) -> bool:
        """Return ``True`` if the path crosses the (undirected) AS link."""
        canonical = _canonical_link(*link)
        return canonical in self.links()

    def traverses_as(self, asn: int) -> bool:
        """Return ``True`` if the path visits the AS."""
        return asn in self._asns

    def has_loop(self) -> bool:
        """Return ``True`` if any AS appears more than once (invalid path)."""
        loop = self._loop
        if loop is None:
            loop = self._loop = len(set(self._asns)) != len(self._asns)
        return loop

    def prepend(self, asn: int, count: int = 1) -> "ASPath":
        """Return a new path with ``asn`` prepended ``count`` times."""
        return ASPath((asn,) * count + self._asns)

    def truncate(self, max_links: int) -> "ASPath":
        """Return a copy keeping at most ``max_links`` links from the head."""
        return ASPath(self._asns[: max_links + 1])

    @classmethod
    def from_string(cls, text: str) -> "ASPath":
        """Parse a whitespace-separated AS path string such as ``"2 5 6"``."""
        parts = text.split()
        return cls(int(part) for part in parts)


def _restore_aspath(asns: Tuple[int, ...]) -> "ASPath":
    """Unpickle fast path: rebuild a path from an already-validated tuple."""
    path = ASPath.__new__(ASPath)
    path._asns = asns
    path._links = None
    path._loop = None
    return path


def _canonical_link(a: int, b: int) -> Tuple[int, int]:
    """Return the undirected (sorted) form of an AS link."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class PathAttributes:
    """The attribute set attached to a BGP announcement.

    Only the attributes relevant to path selection and to SWIFT are kept.
    ``next_hop`` identifies the egress neighbor (an AS number in our AS-level
    model rather than an IP address), matching how the paper reasons about
    "primary next-hop" and "backup next-hop" at the AS granularity.
    """

    as_path: ASPath
    next_hop: int
    local_pref: int = 100
    med: int = 0
    origin: Origin = Origin.IGP
    communities: FrozenSet[Community] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.local_pref < 0:
            raise ValueError("local_pref must be non-negative")
        if self.med < 0:
            raise ValueError("MED must be non-negative")

    def __reduce__(self):
        # Constructor-call pickling; see ASPath.__reduce__.
        return (
            PathAttributes,
            (
                self.as_path,
                self.next_hop,
                self.local_pref,
                self.med,
                self.origin,
                self.communities,
            ),
        )

    def with_local_pref(self, local_pref: int) -> "PathAttributes":
        """Return a copy with a different LOCAL_PREF."""
        return PathAttributes(
            as_path=self.as_path,
            next_hop=self.next_hop,
            local_pref=local_pref,
            med=self.med,
            origin=self.origin,
            communities=self.communities,
        )

    def with_communities(self, communities: Sequence[Community]) -> "PathAttributes":
        """Return a copy with the given community set."""
        return PathAttributes(
            as_path=self.as_path,
            next_hop=self.next_hop,
            local_pref=self.local_pref,
            med=self.med,
            origin=self.origin,
            communities=frozenset(communities),
        )

    @property
    def as_path_length(self) -> int:
        """Length of the AS path (number of ASes)."""
        return len(self.as_path)
