"""BGP substrate: prefixes, messages, RIBs, decision process and speakers.

This package implements the inter-domain routing machinery SWIFT sits on
top of.  It is intentionally self contained (no third party dependencies)
and models BGP at the level of detail the paper relies on:

* IPv4 prefixes and longest-prefix-match lookup (:mod:`repro.bgp.prefix`,
  :mod:`repro.bgp.trie`),
* path attributes and UPDATE / WITHDRAW messages (:mod:`repro.bgp.attributes`,
  :mod:`repro.bgp.messages`),
* per-peer Adj-RIB-In tables, a Loc-RIB and the standard decision process
  (:mod:`repro.bgp.rib`, :mod:`repro.bgp.decision`),
* peering sessions carrying timestamped message streams
  (:mod:`repro.bgp.session`),
* a small BGP speaker tying the pieces together (:mod:`repro.bgp.speaker`).
"""

from repro.bgp.attributes import Origin, PathAttributes
from repro.bgp.decision import DecisionProcess, default_decision_process
from repro.bgp.messages import (
    BGPMessage,
    KeepAlive,
    MessageType,
    Notification,
    OpenMessage,
    Update,
    Withdraw,
)
from repro.bgp.prefix import Prefix, PrefixError, summarize_prefixes
from repro.bgp.rib import AdjRibIn, LocRib, RibEntry, RouteChange
from repro.bgp.session import MessageStream, PeeringSession, SessionState
from repro.bgp.speaker import BGPSpeaker
from repro.bgp.trie import PrefixTrie
from repro.bgp.trie_reference import ReferencePrefixTrie

__all__ = [
    "AdjRibIn",
    "BGPMessage",
    "BGPSpeaker",
    "DecisionProcess",
    "KeepAlive",
    "LocRib",
    "MessageStream",
    "MessageType",
    "Notification",
    "OpenMessage",
    "Origin",
    "PathAttributes",
    "PeeringSession",
    "Prefix",
    "PrefixError",
    "PrefixTrie",
    "ReferencePrefixTrie",
    "RibEntry",
    "RouteChange",
    "SessionState",
    "Update",
    "Withdraw",
    "default_decision_process",
    "summarize_prefixes",
]
