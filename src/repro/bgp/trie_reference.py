"""Per-bit binary prefix trie: the parity reference for ``bgp/trie.py``.

This is the original one-node-per-bit trie, kept verbatim (modulo the
memoised bit extraction) as the always-obviously-correct twin of the
path-compressed :class:`repro.bgp.trie.PrefixTrie`.  The fuzz suite in
``tests/test_trie_fuzz.py`` drives both implementations through identical
operation sequences and asserts identical answers, and the ``parity-pair``
static-analysis rule pins the two public surfaces together.

Do not optimise this module: a /24 costs ~25 nodes here by design, which is
exactly why it cannot host an internet-scale table (and why the compressed
twin exists).  It remains the right tool for tests and tiny tables.
"""

from __future__ import annotations

from sys import getsizeof
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.bgp.prefix import Prefix

__all__ = ["ReferencePrefixTrie"]

V = TypeVar("V")


class _Node(Generic[V]):
    """A single trie node; ``value`` is set only for inserted prefixes."""

    __slots__ = ("zero", "one", "prefix", "value", "has_value")

    def __init__(self) -> None:
        self.zero: Optional["_Node[V]"] = None
        self.one: Optional["_Node[V]"] = None
        self.prefix: Optional[Prefix] = None
        self.value: Optional[V] = None
        self.has_value = False


class ReferencePrefixTrie(Generic[V]):
    """Map from :class:`~repro.bgp.prefix.Prefix` to arbitrary values.

    Provides dictionary-like exact operations plus longest-prefix-match
    queries on 32-bit addresses.  Iteration order is sorted by prefix.
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    # -- mutation ---------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored under ``prefix``."""
        node = self._root
        for bit in prefix.significant_bits():
            if bit:
                if node.one is None:
                    node.one = _Node()
                node = node.one
            else:
                if node.zero is None:
                    node.zero = _Node()
                node = node.zero
        if not node.has_value:
            self._size += 1
        node.prefix = prefix
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> V:
        """Remove ``prefix`` and return its value; raise ``KeyError`` if absent."""
        path: List[Tuple[_Node[V], int]] = []
        node = self._root
        for bit in prefix.significant_bits():
            path.append((node, bit))
            node = node.one if bit else node.zero
            if node is None:
                raise KeyError(prefix)
        if not node.has_value:
            raise KeyError(prefix)
        value = node.value
        node.has_value = False
        node.prefix = None
        node.value = None
        self._size -= 1
        # Prune now-empty leaf nodes back towards the root.
        for parent, bit in reversed(path):
            child = parent.one if bit else parent.zero
            if child is None:
                break
            if child.has_value or child.zero is not None or child.one is not None:
                break
            if bit:
                parent.one = None
            else:
                parent.zero = None
        return value  # type: ignore[return-value]

    def clear(self) -> None:
        """Remove every entry."""
        self._root = _Node()
        self._size = 0

    # -- exact queries ----------------------------------------------------

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        """Return the value stored exactly under ``prefix`` or ``default``."""
        node = self._find_exact(prefix)
        if node is None or not node.has_value:
            return default
        return node.value

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find_exact(prefix)
        return node is not None and node.has_value

    def __getitem__(self, prefix: Prefix) -> V:
        node = self._find_exact(prefix)
        if node is None or not node.has_value:
            raise KeyError(prefix)
        return node.value  # type: ignore[return-value]

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        self.insert(prefix, value)

    def __delitem__(self, prefix: Prefix) -> None:
        self.remove(prefix)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # -- longest prefix match ---------------------------------------------

    def lookup(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix-match lookup of a 32-bit address.

        Returns the ``(prefix, value)`` pair of the most specific matching
        entry, or ``None`` when no entry covers the address.
        """
        best: Optional[Tuple[Prefix, V]] = None
        node = self._root
        if node.has_value:
            best = (node.prefix, node.value)  # type: ignore[assignment]
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            node = node.one if bit else node.zero
            if node is None:
                break
            if node.has_value:
                best = (node.prefix, node.value)  # type: ignore[assignment]
        return best

    def lookup_prefix(self, prefix: Prefix) -> Optional[Tuple[Prefix, V]]:
        """Return the most specific entry covering ``prefix`` (possibly itself)."""
        best: Optional[Tuple[Prefix, V]] = None
        node = self._root
        if node.has_value:
            best = (node.prefix, node.value)  # type: ignore[assignment]
        for bit in prefix.significant_bits():
            node = node.one if bit else node.zero
            if node is None:
                break
            if node.has_value:
                best = (node.prefix, node.value)  # type: ignore[assignment]
        return best

    def covered_by(self, prefix: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Yield every stored entry equal to or more specific than ``prefix``."""
        node = self._root
        for bit in prefix.significant_bits():
            node = node.one if bit else node.zero
            if node is None:
                return
        yield from self._walk(node)

    # -- iteration --------------------------------------------------------

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Yield ``(prefix, value)`` pairs in sorted prefix order."""
        yield from self._walk(self._root)

    def keys(self) -> Iterator[Prefix]:
        """Yield stored prefixes in sorted order."""
        for prefix, _ in self.items():
            yield prefix

    def values(self) -> Iterator[V]:
        """Yield stored values in sorted prefix order."""
        for _, value in self.items():
            yield value

    def __iter__(self) -> Iterator[Prefix]:
        return self.keys()

    # -- size accounting ---------------------------------------------------

    def node_count(self) -> int:
        """Number of trie nodes currently allocated (roughly 25x entries)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if node.zero is not None:
                stack.append(node.zero)
            if node.one is not None:
                stack.append(node.one)
        return count

    def memory_bytes(self) -> int:
        """Bytes held by the trie's working set.

        Counts the node objects plus the memoised per-prefix bit tuples this
        implementation's walks depend on (every insert/remove/covered_by
        materialises ``prefix.significant_bits()``, which the prefix then
        retains).  The stored prefixes and values themselves are references
        shared with the caller and are not counted, so the number is
        directly comparable with the compressed twin's — which needs
        neither per-bit nodes nor bit tuples.
        """
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += getsizeof(node)
            if node.has_value:
                total += getsizeof(node.prefix.significant_bits())
            if node.zero is not None:
                stack.append(node.zero)
            if node.one is not None:
                stack.append(node.one)
        return total

    # -- internals --------------------------------------------------------

    def _find_exact(self, prefix: Prefix) -> Optional[_Node[V]]:
        node = self._root
        for bit in prefix.significant_bits():
            node = node.one if bit else node.zero
            if node is None:
                return None
        return node

    def _walk(self, node: _Node[V]) -> Iterator[Tuple[Prefix, V]]:
        if node.has_value:
            yield node.prefix, node.value  # type: ignore[misc]
        if node.zero is not None:
            yield from self._walk(node.zero)
        if node.one is not None:
            yield from self._walk(node.one)

    def to_dict(self) -> Dict[Prefix, V]:
        """Materialise the trie as a plain dictionary."""
        return dict(self.items())
