"""BGP message types.

The SWIFT input is a timestamped stream of UPDATE messages, each carrying
announcements (prefix + attributes) and/or withdrawals (prefix only).  We
also model OPEN / KEEPALIVE / NOTIFICATION so that session lifecycle can be
exercised by the session and speaker modules, and so the synthetic trace
generator can emit session resets (a common real-world cause of bursts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.bgp.attributes import PathAttributes
from repro.bgp.prefix import Prefix

__all__ = [
    "Announcement",
    "BGPMessage",
    "KeepAlive",
    "MessageType",
    "Notification",
    "OpenMessage",
    "Update",
    "Withdraw",
    "iter_withdrawn_prefixes",
    "iter_announced_prefixes",
]


class MessageType(Enum):
    """The four BGP message types (RFC 4271) at the abstraction we need."""

    OPEN = "open"
    UPDATE = "update"
    KEEPALIVE = "keepalive"
    NOTIFICATION = "notification"


@dataclass(frozen=True)
class BGPMessage:
    """Base class for all messages.

    ``timestamp`` is in seconds (float, arbitrary epoch); ``peer_as`` is the
    AS the message was received from (i.e. the eBGP neighbor on the session),
    which is how RouteViews/RIS attribute messages to vantage points.
    """

    timestamp: float
    peer_as: int

    @property
    def type(self) -> MessageType:
        raise NotImplementedError


@dataclass(frozen=True)
class OpenMessage(BGPMessage):
    """Session establishment message."""

    hold_time: float = 90.0

    @property
    def type(self) -> MessageType:
        return MessageType.OPEN


@dataclass(frozen=True)
class KeepAlive(BGPMessage):
    """Session keepalive."""

    @property
    def type(self) -> MessageType:
        return MessageType.KEEPALIVE


@dataclass(frozen=True)
class Notification(BGPMessage):
    """Session teardown / error notification."""

    error_code: int = 6
    error_subcode: int = 0
    reason: str = ""

    @property
    def type(self) -> MessageType:
        return MessageType.NOTIFICATION


@dataclass(frozen=True)
class Announcement:
    """A single (prefix, attributes) announcement inside an UPDATE."""

    prefix: Prefix
    attributes: PathAttributes

    def __reduce__(self):
        # Constructor-call pickling: traces serialise millions of these and
        # the dataclass state-dict path is several times slower to restore.
        return (Announcement, (self.prefix, self.attributes))


@dataclass(frozen=True)
class Update(BGPMessage):
    """A BGP UPDATE message.

    A single UPDATE can carry several announcements sharing the same
    attribute set plus an arbitrary list of withdrawals ("update packing",
    §2.1.1 of the paper).  For convenience the synthetic generator usually
    emits one prefix per message, as observed in the wild when communities
    differ per prefix.
    """

    announcements: Tuple[Announcement, ...] = field(default_factory=tuple)
    withdrawals: Tuple[Prefix, ...] = field(default_factory=tuple)

    @property
    def type(self) -> MessageType:
        return MessageType.UPDATE

    def __reduce__(self):
        # See Announcement.__reduce__: constructor-call pickling keeps trace
        # caches fast to restore.
        return (
            Update,
            (self.timestamp, self.peer_as, self.announcements, self.withdrawals),
        )

    @property
    def is_withdrawal_only(self) -> bool:
        """True if the message carries no announcements."""
        return not self.announcements and bool(self.withdrawals)

    @property
    def is_announcement_only(self) -> bool:
        """True if the message carries no withdrawals."""
        return bool(self.announcements) and not self.withdrawals

    @property
    def prefix_count(self) -> int:
        """Total number of prefixes touched by this message."""
        return len(self.announcements) + len(self.withdrawals)

    @staticmethod
    def announce(
        timestamp: float,
        peer_as: int,
        prefix: Prefix,
        attributes: PathAttributes,
    ) -> "Update":
        """Build an UPDATE announcing a single prefix."""
        return Update(
            timestamp=timestamp,
            peer_as=peer_as,
            announcements=(Announcement(prefix, attributes),),
        )

    @staticmethod
    def withdraw(timestamp: float, peer_as: int, prefix: Prefix) -> "Update":
        """Build an UPDATE withdrawing a single prefix."""
        return Update(timestamp=timestamp, peer_as=peer_as, withdrawals=(prefix,))

    @staticmethod
    def withdraw_many(
        timestamp: float, peer_as: int, prefixes: Sequence[Prefix]
    ) -> "Update":
        """Build an UPDATE withdrawing several prefixes at once."""
        return Update(
            timestamp=timestamp, peer_as=peer_as, withdrawals=tuple(prefixes)
        )


# ``Withdraw`` is a convenience alias: a withdrawal-only Update.  Exposed as a
# distinct name because much of the SWIFT pipeline only cares about the
# withdrawal stream.
Withdraw = Update.withdraw


def iter_withdrawn_prefixes(
    messages: Iterable[BGPMessage],
) -> Iterable[Tuple[float, int, Prefix]]:
    """Yield ``(timestamp, peer_as, prefix)`` for every withdrawal in a stream."""
    for message in messages:
        if isinstance(message, Update):
            for prefix in message.withdrawals:
                yield message.timestamp, message.peer_as, prefix


def iter_announced_prefixes(
    messages: Iterable[BGPMessage],
) -> Iterable[Tuple[float, int, Prefix, PathAttributes]]:
    """Yield ``(timestamp, peer_as, prefix, attributes)`` for every announcement."""
    for message in messages:
        if isinstance(message, Update):
            for announcement in message.announcements:
                yield (
                    message.timestamp,
                    message.peer_as,
                    announcement.prefix,
                    announcement.attributes,
                )


def split_update(update: Update, max_prefixes: int) -> List[Update]:
    """Split an UPDATE into chunks of at most ``max_prefixes`` prefixes each.

    Models the router behaviour of flushing large withdrawal sets across
    several wire messages; used by the propagation simulator to pace bursts.
    """
    if max_prefixes <= 0:
        raise ValueError("max_prefixes must be positive")
    if update.prefix_count <= max_prefixes:
        return [update]
    chunks: List[Update] = []
    announcements = list(update.announcements)
    withdrawals = list(update.withdrawals)
    while announcements or withdrawals:
        chunk_announcements: List[Announcement] = []
        chunk_withdrawals: List[Prefix] = []
        budget = max_prefixes
        while withdrawals and budget > 0:
            chunk_withdrawals.append(withdrawals.pop(0))
            budget -= 1
        while announcements and budget > 0:
            chunk_announcements.append(announcements.pop(0))
            budget -= 1
        chunks.append(
            Update(
                timestamp=update.timestamp,
                peer_as=update.peer_as,
                announcements=tuple(chunk_announcements),
                withdrawals=tuple(chunk_withdrawals),
            )
        )
    return chunks
