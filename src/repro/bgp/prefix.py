"""IPv4 prefix representation.

The whole SWIFT pipeline is keyed on prefixes: bursts are counted in
withdrawn prefixes, the RIB maps prefixes to AS paths and the encoding
algorithm tags packets per destination prefix.  This module provides a
compact, hashable, total-ordered :class:`Prefix` value type plus a few
helpers used across the code base.

The implementation deliberately avoids :mod:`ipaddress` so that creating
hundreds of thousands of prefixes (a full Internet table is ~650k routes)
stays cheap; a prefix is just an ``(int, int)`` pair internally.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Prefix",
    "PrefixError",
    "parse_prefix",
    "prefix_block",
    "summarize_prefixes",
]

_MAX_IPV4 = (1 << 32) - 1


class PrefixError(ValueError):
    """Raised when a prefix string or (network, length) pair is invalid."""


def _dotted_to_int(dotted: str) -> int:
    """Convert a dotted-quad IPv4 address to its integer value."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise PrefixError(f"invalid IPv4 address {dotted!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise PrefixError(f"invalid IPv4 address {dotted!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"invalid IPv4 address {dotted!r}")
        value = (value << 8) | octet
    return value


def _int_to_dotted(value: int) -> str:
    """Convert an integer IPv4 address to dotted-quad notation."""
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class Prefix:
    """An IPv4 prefix such as ``203.0.113.0/24``.

    Instances are immutable, hashable and totally ordered (first by network
    address, then by prefix length), which makes them usable as dictionary
    keys and sortable for deterministic output.

    Parameters
    ----------
    network:
        Network address as a 32-bit integer.  Host bits below the prefix
        length are masked off automatically.
    length:
        Prefix length in ``[0, 32]``.
    """

    __slots__ = ("_network", "_length", "_hash", "_bits")

    def __init__(self, network: int, length: int) -> None:
        if not 0 <= length <= 32:
            raise PrefixError(f"prefix length {length} out of range [0, 32]")
        if not 0 <= network <= _MAX_IPV4:
            raise PrefixError(f"network {network:#x} out of IPv4 range")
        mask = _mask_for(length)
        self._network = network & mask
        self._length = length
        # Prefixes are dictionary keys on every RIB hot path; pre-computing
        # the (immutable) hash once saves a tuple build per lookup.
        self._hash = hash((self._network, length))
        self._bits: Optional[Tuple[int, ...]] = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (a bare address means a /32)."""
        text = text.strip()
        if "/" in text:
            address, _, length_text = text.partition("/")
            if not length_text.isdigit():
                raise PrefixError(f"invalid prefix {text!r}")
            length = int(length_text)
        else:
            address, length = text, 32
        return cls(_dotted_to_int(address), length)

    # -- accessors --------------------------------------------------------

    @property
    def network(self) -> int:
        """Network address as a 32-bit integer."""
        return self._network

    @property
    def length(self) -> int:
        """Prefix length."""
        return self._length

    @property
    def netmask(self) -> int:
        """Netmask as a 32-bit integer."""
        return _mask_for(self._length)

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by this prefix."""
        return 1 << (32 - self._length)

    @property
    def first_address(self) -> int:
        """Lowest address in the prefix (the network address)."""
        return self._network

    @property
    def last_address(self) -> int:
        """Highest address in the prefix (the broadcast address)."""
        return self._network | (~self.netmask & _MAX_IPV4)

    def contains_address(self, address: int) -> bool:
        """Return ``True`` if ``address`` (an int) falls inside this prefix."""
        return (address & self.netmask) == self._network

    def contains(self, other: "Prefix") -> bool:
        """Return ``True`` if ``other`` is equal to or more specific than us."""
        if other._length < self._length:
            return False
        return (other._network & self.netmask) == self._network

    def supernet(self) -> "Prefix":
        """Return the immediately covering prefix (one bit shorter)."""
        if self._length == 0:
            raise PrefixError("0.0.0.0/0 has no supernet")
        return Prefix(self._network, self._length - 1)

    def subnets(self) -> Tuple["Prefix", "Prefix"]:
        """Split this prefix into its two halves (one bit longer each)."""
        if self._length == 32:
            raise PrefixError("/32 prefixes cannot be subdivided")
        child_length = self._length + 1
        low = Prefix(self._network, child_length)
        high = Prefix(self._network | (1 << (32 - child_length)), child_length)
        return low, high

    def bits(self) -> str:
        """Return the significant bits of the prefix as a ``'0'``/``'1'`` string."""
        if self._length == 0:
            return ""
        return format(self._network >> (32 - self._length), f"0{self._length}b")

    def significant_bits(self) -> Tuple[int, ...]:
        """The significant bits as a tuple of ints, most significant first.

        Memoised on the instance: per-bit trie walks touch every bit of a
        prefix on each insert/remove/exact lookup, and rebuilding the bit
        list per call dominated those operations at table scale.
        """
        bits = self._bits
        if bits is None:
            network, length = self._network, self._length
            bits = self._bits = tuple(
                (network >> shift) & 1 for shift in range(31, 31 - length, -1)
            )
        return bits

    # -- dunder protocol ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self._network == other._network and self._length == other._length

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._network, self._length) < (other._network, other._length)

    def __le__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._network, self._length) <= (other._network, other._length)

    def __gt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._network, self._length) > (other._network, other._length)

    def __ge__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._network, self._length) >= (other._network, other._length)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Restore via the trusted fast path: the stored fields were already
        # validated and masked at construction, and trace caches serialise
        # millions of prefixes.
        return (_restore_prefix, (self._network, self._length))

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __str__(self) -> str:
        return f"{_int_to_dotted(self._network)}/{self._length}"


def _restore_prefix(network: int, length: int) -> "Prefix":
    """Unpickle fast path: rebuild a prefix from already-validated fields."""
    prefix = Prefix.__new__(Prefix)
    prefix._network = network
    prefix._length = length
    prefix._hash = hash((network, length))
    prefix._bits = None
    return prefix


def _mask_for(length: int) -> int:
    """Return the netmask integer for a prefix length."""
    if length == 0:
        return 0
    return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4


def parse_prefix(text: str) -> Prefix:
    """Convenience wrapper around :meth:`Prefix.from_string`."""
    return Prefix.from_string(text)


def prefix_block(base: str, count: int, length: int = 24) -> List[Prefix]:
    """Generate ``count`` consecutive prefixes of the given length.

    This is the workhorse used by the topology generators to hand each AS a
    set of prefixes, mirroring the "each AS i originates a distinct set of
    prefixes S_i" setup of the paper's running example (Fig. 1).

    Parameters
    ----------
    base:
        Starting prefix in string form, e.g. ``"10.0.0.0/24"``.  Its length
        must match ``length``.
    count:
        Number of consecutive prefixes to return.
    length:
        Prefix length of every generated prefix.
    """
    start = Prefix.from_string(base)
    if start.length != length:
        raise PrefixError(
            f"base prefix {base} has length {start.length}, expected {length}"
        )
    stride = 1 << (32 - length)
    prefixes: List[Prefix] = []
    network = start.network
    for _ in range(count):
        if network > _MAX_IPV4:
            raise PrefixError("prefix block overflows IPv4 address space")
        prefixes.append(Prefix(network, length))
        network += stride
    return prefixes


def summarize_prefixes(prefixes: Iterable[Prefix]) -> List[Prefix]:
    """Aggregate adjacent sibling prefixes into their supernets.

    The summarisation is exact: the returned list covers exactly the same
    address space as the input (assuming the input contains no duplicates),
    with the minimum number of prefixes.  It is used by the synthetic trace
    generator to emit realistic mixes of prefix lengths.
    """
    working = sorted(set(prefixes))
    merged = True
    while merged:
        merged = False
        result: List[Prefix] = []
        index = 0
        while index < len(working):
            current = working[index]
            if index + 1 < len(working) and current.length == working[index + 1].length:
                sibling = working[index + 1]
                if current.length > 0:
                    parent = current.supernet()
                    if parent.contains(current) and parent.contains(sibling) and (
                        sibling.network == current.network + current.num_addresses
                    ):
                        result.append(parent)
                        index += 2
                        merged = True
                        continue
            result.append(current)
            index += 1
        working = result
    return working


def iter_addresses(prefix: Prefix, limit: int = 256) -> Iterator[int]:
    """Yield up to ``limit`` addresses contained in ``prefix``.

    Used by the case-study probe harness, which sends traffic to a sample of
    addresses inside the withdrawn prefixes (the paper probes 100 random IPs).
    """
    count = min(limit, prefix.num_addresses)
    for offset in range(count):
        yield prefix.network + offset


def random_addresses(
    prefixes: Sequence[Prefix], count: int, rng
) -> List[int]:
    """Pick ``count`` random addresses, each from a random prefix.

    Parameters
    ----------
    prefixes:
        Non-empty sequence of candidate prefixes.
    count:
        Number of addresses to draw (with replacement across prefixes).
    rng:
        A :class:`random.Random` instance, for deterministic experiments.
    """
    if not prefixes:
        raise PrefixError("cannot sample addresses from an empty prefix list")
    addresses: List[int] = []
    for _ in range(count):
        prefix = prefixes[rng.randrange(len(prefixes))]
        offset = rng.randrange(prefix.num_addresses)
        addresses.append(prefix.network + offset)
    return addresses
