"""BGP peering sessions and message streams.

A :class:`PeeringSession` models one eBGP session between the SWIFTED router
(or a route collector) and a neighbor AS.  It carries a time-ordered
:class:`MessageStream`, tracks session state, and maintains the per-session
Adj-RIB-In that the SWIFT inference engine reads.  The paper runs inference
"on a per-session basis (enabling parallelism)" (§4.1), so the session is the
natural unit of work throughout this code base.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bgp.messages import BGPMessage, MessageType, Notification, OpenMessage, Update
from repro.bgp.prefix import Prefix
from repro.bgp.rib import AdjRibIn, RouteChange

__all__ = ["MessageStream", "PeeringSession", "SessionState", "SessionStats"]


class SessionState(Enum):
    """Simplified BGP FSM states (only the ones our models need)."""

    IDLE = "idle"
    ESTABLISHED = "established"
    CLOSED = "closed"


class MessageStream:
    """A time-ordered sequence of BGP messages.

    Messages are kept sorted by timestamp; appending out-of-order messages is
    allowed (the collector dump readers may interleave files) and handled via
    insertion sort on the timestamp key.
    """

    def __init__(self, messages: Optional[Iterable[BGPMessage]] = None) -> None:
        self._messages: List[BGPMessage] = []
        self._timestamps: List[float] = []
        if messages is not None:
            for message in messages:
                self.append(message)

    def append(self, message: BGPMessage) -> None:
        """Add a message, keeping the stream sorted by timestamp."""
        if not self._timestamps or message.timestamp >= self._timestamps[-1]:
            self._messages.append(message)
            self._timestamps.append(message.timestamp)
            return
        index = bisect.bisect_right(self._timestamps, message.timestamp)
        self._messages.insert(index, message)
        self._timestamps.insert(index, message.timestamp)

    def extend(self, messages: Iterable[BGPMessage]) -> None:
        """Append several messages.

        An already-sorted batch that starts at or after the stream's current
        end is appended with two list concatenations; anything else falls
        back to per-message insertion.
        """
        batch = messages if isinstance(messages, (list, tuple)) else list(messages)
        if not batch:
            return
        timestamps = [message.timestamp for message in batch]
        in_order = all(a <= b for a, b in zip(timestamps, timestamps[1:]))
        if in_order and (not self._timestamps or timestamps[0] >= self._timestamps[-1]):
            self._messages.extend(batch)
            self._timestamps.extend(timestamps)
            return
        for message in batch:
            self.append(message)

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[BGPMessage]:
        return iter(self._messages)

    def __getitem__(self, index):
        return self._messages[index]

    @property
    def start_time(self) -> Optional[float]:
        """Timestamp of the first message, or ``None`` when empty."""
        return self._timestamps[0] if self._timestamps else None

    @property
    def end_time(self) -> Optional[float]:
        """Timestamp of the last message, or ``None`` when empty."""
        return self._timestamps[-1] if self._timestamps else None

    @property
    def duration(self) -> float:
        """Time spanned by the stream in seconds (0.0 when < 2 messages)."""
        if len(self._timestamps) < 2:
            return 0.0
        return self._timestamps[-1] - self._timestamps[0]

    def window(self, start: float, end: float) -> "MessageStream":
        """Return the sub-stream with ``start <= timestamp < end``."""
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end)
        return MessageStream(self._messages[lo:hi])

    def updates(self) -> Iterator[Update]:
        """Iterate over UPDATE messages only."""
        for message in self._messages:
            if isinstance(message, Update):
                yield message

    def withdrawal_count(self) -> int:
        """Total number of withdrawn prefixes in the stream."""
        return sum(len(m.withdrawals) for m in self.updates())

    def announcement_count(self) -> int:
        """Total number of announced prefixes in the stream."""
        return sum(len(m.announcements) for m in self.updates())

    def withdrawals_in_window(self, start: float, end: float) -> int:
        """Number of withdrawn prefixes with ``start <= timestamp < end``."""
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end)
        total = 0
        for message in self._messages[lo:hi]:
            if isinstance(message, Update):
                total += len(message.withdrawals)
        return total


@dataclass
class SessionStats:
    """Running counters a session keeps about its own traffic."""

    messages_received: int = 0
    announcements_received: int = 0
    withdrawals_received: int = 0
    session_resets: int = 0
    last_message_at: Optional[float] = None


class PeeringSession:
    """One eBGP session between a local router and a neighbor AS.

    The session owns an Adj-RIB-In updated as messages are processed, a
    recorded :class:`MessageStream` (so bursts can be re-analysed), running
    statistics, and an optional list of observers invoked on every processed
    UPDATE — this is the hook the SWIFT engine uses to watch the stream in
    real time.

    Parameters
    ----------
    local_as:
        The AS number of the router terminating the session locally.
    peer_as:
        The neighbor AS number.
    name:
        Optional human-readable name (collector peers use e.g. ``"rrc00-3356"``).
    """

    def __init__(self, local_as: int, peer_as: int, name: Optional[str] = None) -> None:
        self.local_as = local_as
        self.peer_as = peer_as
        self.name = name or f"{local_as}-{peer_as}"
        self.state = SessionState.IDLE
        self.rib_in = AdjRibIn(peer_as)
        self.stream = MessageStream()
        self.stats = SessionStats()
        # Replay workloads that never re-analyse the raw stream can switch
        # recording off: month-scale replays otherwise hold every processed
        # message alive, and the columnar fast path can only skip message
        # materialisation entirely when nothing records the objects.
        self.record_stream = True
        self._observers: List[Callable[["PeeringSession", Update, List[RouteChange]], None]] = []
        self._change_observers: List[Callable[["PeeringSession", List[RouteChange]], None]] = []

    # -- lifecycle --------------------------------------------------------

    def establish(self, timestamp: float = 0.0) -> OpenMessage:
        """Bring the session up and return the OPEN message that did it."""
        self.state = SessionState.ESTABLISHED
        message = OpenMessage(timestamp=timestamp, peer_as=self.peer_as)
        self.stream.append(message)
        return message

    def close(self, timestamp: float = 0.0, reason: str = "") -> Notification:
        """Tear the session down; the Adj-RIB-In is flushed (hard reset)."""
        self.state = SessionState.CLOSED
        self.rib_in.clear()
        self.stats.session_resets += 1
        message = Notification(
            timestamp=timestamp, peer_as=self.peer_as, reason=reason
        )
        self.stream.append(message)
        return message

    @property
    def is_established(self) -> bool:
        """True if the session is currently up."""
        return self.state == SessionState.ESTABLISHED

    # -- observers --------------------------------------------------------

    def add_observer(
        self,
        callback: Callable[["PeeringSession", Update, List[RouteChange]], None],
    ) -> None:
        """Register a callback invoked after each processed UPDATE."""
        self._observers.append(callback)

    def remove_observer(
        self,
        callback: Callable[["PeeringSession", Update, List[RouteChange]], None],
    ) -> None:
        """Unregister a previously added callback."""
        self._observers.remove(callback)

    def add_change_observer(
        self,
        callback: Callable[["PeeringSession", List[RouteChange]], None],
    ) -> None:
        """Register a callback fed the Adj-RIB-In changes, sans messages.

        Change observers receive ``(session, changes)`` — no ``Update``
        object — so, unlike :meth:`add_observer` observers, they do **not**
        force the columnar fast path of :meth:`process_columnar_run` to
        materialise messages.  Granularity is one call per processing call
        (:meth:`process` fires per message; the batched paths fire once with
        the run's concatenated changes, in message order) and empty change
        lists are skipped; observers that need per-message boundaries or the
        messages themselves must use :meth:`add_observer`.
        """
        self._change_observers.append(callback)

    def remove_change_observer(
        self,
        callback: Callable[["PeeringSession", List[RouteChange]], None],
    ) -> None:
        """Unregister a previously added change observer."""
        self._change_observers.remove(callback)

    # -- message processing -----------------------------------------------

    def process(self, message: BGPMessage) -> List[RouteChange]:
        """Apply a message to the session state and return resulting changes.

        OPEN establishes, NOTIFICATION closes (flushing the RIB), KEEPALIVE
        only refreshes statistics and UPDATE mutates the Adj-RIB-In.
        """
        self.stats.messages_received += 1
        self.stats.last_message_at = message.timestamp
        if self.record_stream:
            self.stream.append(message)

        if message.type == MessageType.OPEN:
            self.state = SessionState.ESTABLISHED
            return []
        if message.type == MessageType.NOTIFICATION:
            self.state = SessionState.CLOSED
            self.rib_in.clear()
            self.stats.session_resets += 1
            return []
        if message.type == MessageType.KEEPALIVE:
            return []

        assert isinstance(message, Update)
        changes: List[RouteChange] = []
        for prefix in message.withdrawals:
            change = self.rib_in.withdraw(prefix, timestamp=message.timestamp)
            changes.append(change)
            self.stats.withdrawals_received += 1
        for announcement in message.announcements:
            change = self.rib_in.announce(
                announcement.prefix, announcement.attributes, timestamp=message.timestamp
            )
            changes.append(change)
            self.stats.announcements_received += 1

        for observer in self._observers:
            observer(self, message, changes)
        if changes:
            for observer in self._change_observers:
                observer(self, changes)
        return changes

    def process_all(self, messages: Iterable[BGPMessage]) -> List[RouteChange]:
        """Process a sequence of messages, returning the concatenated changes."""
        all_changes: List[RouteChange] = []
        for message in messages:
            all_changes.extend(self.process(message))
        return all_changes

    def process_batch(
        self, messages: Iterable[BGPMessage]
    ) -> List[List[RouteChange]]:
        """Bulk :meth:`process`: apply a run of messages in one call.

        Returns one change list per message (same order), so callers that
        need message boundaries — e.g. the batched speaker tracking
        reachability transitions — keep them.  Semantically identical to
        calling :meth:`process` per message, with three bulk-mode
        amortisations: the stream records the run in one extend, the
        statistics counters fold in once at the end (an observer reading
        ``stats`` mid-run sees the pre-run values), and the Adj-RIB-In's
        link index applies one net transition per touched prefix instead of
        churning at every intermediate path change — so an observer
        querying path shares mid-run sees the pre-run index.
        """
        if not isinstance(messages, (list, tuple)):
            messages = list(messages)
        per_message: List[List[RouteChange]] = []
        stats = self.stats
        if self.record_stream:
            self.stream.extend(messages)
        rib_in = self.rib_in
        rib_withdraw = rib_in.withdraw
        rib_announce = rib_in.announce
        observers = self._observers
        count = 0
        withdrawals = 0
        announcements = 0
        last_at = stats.last_message_at
        rib_in.begin_bulk()
        append_result = per_message.append
        for message in messages:
            count += 1
            timestamp = message.timestamp
            last_at = timestamp
            if not isinstance(message, Update):
                if message.type == MessageType.OPEN:
                    self.state = SessionState.ESTABLISHED
                elif message.type == MessageType.NOTIFICATION:
                    self.state = SessionState.CLOSED
                    self.rib_in.clear()
                    stats.session_resets += 1
                append_result([])
                continue
            changes: List[RouteChange] = []
            changes_append = changes.append
            for prefix in message.withdrawals:
                changes_append(rib_withdraw(prefix, timestamp))
                withdrawals += 1
            for announcement in message.announcements:
                changes_append(
                    rib_announce(announcement.prefix, announcement.attributes, timestamp)
                )
                announcements += 1
            for observer in observers:
                observer(self, message, changes)
            append_result(changes)
        rib_in.end_bulk()
        stats.messages_received += count
        stats.withdrawals_received += withdrawals
        stats.announcements_received += announcements
        if count:
            stats.last_message_at = last_at
        self._notify_change_observers(per_message)
        return per_message

    def _notify_change_observers(
        self, per_message: List[List[RouteChange]]
    ) -> None:
        """Fire the change observers once with a run's concatenated changes."""
        if not self._change_observers:
            return
        flat = [change for changes in per_message for change in changes]
        if not flat:
            return
        for observer in self._change_observers:
            observer(self, flat)

    def process_columnar_run(self, run, kernel=None) -> List[List[RouteChange]]:
        """Apply a same-peer :class:`~repro.traces.columnar.ColumnarRun`.

        The fast path walks the run's raw columns — timestamps, withdrawal /
        announcement index windows — and feeds the Adj-RIB-In interned
        prefix / attribute objects directly, never constructing a single
        :class:`~repro.bgp.messages.Update`.  Semantically identical to
        :meth:`process_batch` over the run's materialised messages, which is
        exactly what it falls back to when observers are registered or the
        stream recorder is on (both consume message objects).  Change
        observers (:meth:`add_change_observer`) consume only
        :class:`~repro.bgp.rib.RouteChange` lists and therefore do *not*
        force the fallback — that is what keeps the SWIFTED router's
        dirty-prefix tracking off the materialisation path.

        ``run`` is duck-typed (no import of the traces layer): it must carry
        ``trace``/``start``/``stop`` plus a ``materialise()`` fallback, the
        interface documented in :mod:`repro.traces.columnar`.  With a
        vectorised ``kernel`` (:mod:`repro.core.kernels`; ``None``
        auto-selects) the rows needing per-row work — non-UPDATE rows and
        rows carrying prefixes — are located by one kernel pass and the
        rest contribute empty change lists without being visited.
        """
        if self._observers or self.record_stream:
            return self.process_batch(run.materialise())
        if kernel is None:
            from repro.core import kernels

            kernel = kernels.default_backend()
        trace = run.trace
        pool = trace.pool
        prefix_at = pool.prefix_at
        attributes_at = pool.attributes_at
        msg_kind = trace.msg_kind
        msg_time = trace.msg_time
        wd_end = trace.wd_end
        ann_end = trace.ann_end
        wd_prefix = trace.wd_prefix
        ann_prefix = trace.ann_prefix
        ann_attr = trace.ann_attr
        start, stop = run.start, run.stop

        stats = self.stats
        rib_in = self.rib_in
        rib_withdraw = rib_in.withdraw
        rib_announce = rib_in.announce
        per_message: List[List[RouteChange]] = []
        append_result = per_message.append
        count = 0
        withdrawals = 0
        announcements = 0
        last_at = stats.last_message_at
        # Flat-column cursors: message i owns wd_prefix[w:wd_end[i]] and
        # ann_prefix[a:ann_end[i]] (kind byte 0 = UPDATE, 1 = OPEN,
        # 3 = NOTIFICATION; see repro.traces.columnar).
        w = wd_end[start - 1] if start else 0
        a = ann_end[start - 1] if start else 0
        rib_in.begin_bulk()
        if kernel.VECTORISED:
            # Sparse walk: rows that are UPDATEs without prefixes only
            # contribute an empty change list and a timestamp — the column
            # totals and the run's last row give both without a visit.
            extend_result = per_message.extend
            position = start
            for index in kernel.interesting_rows(
                msg_kind, wd_end, ann_end, start, stop
            ):
                if index > position:
                    extend_result([] for _ in range(index - position))
                position = index + 1
                timestamp = msg_time[index]
                kind = msg_kind[index]
                if kind != 0:
                    if kind == 1:
                        self.state = SessionState.ESTABLISHED
                    elif kind == 3:
                        self.state = SessionState.CLOSED
                        rib_in.clear()
                        stats.session_resets += 1
                    append_result([])
                    w = wd_end[index]
                    a = ann_end[index]
                    continue
                changes: List[RouteChange] = []
                changes_append = changes.append
                w_high = wd_end[index]
                while w < w_high:
                    changes_append(rib_withdraw(prefix_at(wd_prefix[w]), timestamp))
                    w += 1
                    withdrawals += 1
                a_high = ann_end[index]
                while a < a_high:
                    changes_append(
                        rib_announce(
                            prefix_at(ann_prefix[a]), attributes_at(ann_attr[a]), timestamp
                        )
                    )
                    a += 1
                    announcements += 1
                append_result(changes)
            if stop > position:
                extend_result([] for _ in range(stop - position))
            count = stop - start
            if count:
                last_at = msg_time[stop - 1]
        else:
            for index in range(start, stop):
                count += 1
                timestamp = msg_time[index]
                last_at = timestamp
                kind = msg_kind[index]
                if kind != 0:
                    if kind == 1:
                        self.state = SessionState.ESTABLISHED
                    elif kind == 3:
                        self.state = SessionState.CLOSED
                        rib_in.clear()
                        stats.session_resets += 1
                    append_result([])
                    continue
                changes: List[RouteChange] = []
                changes_append = changes.append
                w_high = wd_end[index]
                while w < w_high:
                    changes_append(rib_withdraw(prefix_at(wd_prefix[w]), timestamp))
                    w += 1
                    withdrawals += 1
                a_high = ann_end[index]
                while a < a_high:
                    changes_append(
                        rib_announce(
                            prefix_at(ann_prefix[a]), attributes_at(ann_attr[a]), timestamp
                        )
                    )
                    a += 1
                    announcements += 1
                append_result(changes)
        rib_in.end_bulk()
        stats.messages_received += count
        stats.withdrawals_received += withdrawals
        stats.announcements_received += announcements
        if count:
            stats.last_message_at = last_at
        self._notify_change_observers(per_message)
        return per_message

    # -- convenience ------------------------------------------------------

    def reachable_prefixes(self) -> frozenset:
        """Prefixes currently announced (and not withdrawn) on this session."""
        return frozenset(self.rib_in.prefixes())

    def __repr__(self) -> str:
        return (
            f"PeeringSession(name={self.name!r}, local_as={self.local_as}, "
            f"peer_as={self.peer_as}, state={self.state.value}, "
            f"routes={len(self.rib_in)})"
        )
