"""Process-pool fleet replay over shared columnar buffers.

§4.1 of the paper makes burst inference a *per-session* computation — no
state crosses peering sessions — so a month-scale corpus replay is
embarrassingly parallel: one worker per session, no coordination beyond the
final aggregation.  This driver exploits exactly that:

* each session's input ships to its worker as a **raw-buffer payload**
  (:meth:`~repro.traces.columnar.ColumnarTrace.to_payload` — plain
  ``bytes`` per column, the session's pre-trace RIB as two more column
  buffers over the same interning pool), so the inter-process transport is
  a handful of memcpys, never an object-graph pickle;
* each worker rebuilds the trace with
  :meth:`~repro.traces.columnar.ColumnarTrace.from_payload`, replays it
  through :func:`repro.experiments.month_replay.replay_stream` (SWIFTED or
  speaker-only) and returns the session's
  :class:`~repro.experiments.month_replay.MonthReplayResult` — counters
  plus canonical loss / recovery / reroute multisets;
* the driver aggregates **deterministically**: per-session results are
  ordered by peer AS and the fleet-level multisets are canonical sorted
  forms, so a fleet run is byte-identical to a sequential replay of the
  same corpus — asserted, not assumed, by the parity suite
  (``tests/test_fleet_replay.py``).

Workers default to a forked pool (cheap on Linux; the payload is still
shipped explicitly, so a ``spawn`` context works identically).
``workers=1`` — or a single job — replays inline in this process through
the *same* job/worker code path, which is what the parity tests compare
against.
"""

from __future__ import annotations

import os
import time
from array import array
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.swifted_router import SwiftConfig
from repro.experiments.month_replay import (
    DEFAULT_REPLAY_CONFIG,
    EventMultiset,
    MonthReplayResult,
    replay_stream,
)
from repro.metrics.tables import format_table
from repro.traces.columnar import ColumnarTrace, decode_rib, encode_rib
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
    cached_columnar_stream,
)

__all__ = [
    "FleetReplayResult",
    "SessionJob",
    "build_session_jobs",
    "format_fleet_result",
    "iter_session_jobs",
    "replay_fleet",
    "replay_jobs",
]


@dataclass(frozen=True)
class SessionJob:
    """One session's replay input in ship-across-processes form.

    ``payload`` is the stream's raw-buffer export; ``rib_prefix`` /
    ``rib_path`` are the pre-trace Adj-RIB-In snapshot encoded as two
    ``u32`` column buffers indexing into the payload's interning pool (the
    RIB is interned *before* the payload export, so every index resolves).
    """

    peer_as: int
    payload: dict
    rib_prefix: bytes
    rib_path: bytes

    @classmethod
    def from_stream(
        cls, peer_as: int, stream: ColumnarTrace, rib: dict
    ) -> "SessionJob":
        """Package a session's stream + RIB snapshot into a job."""
        # Intern the RIB first: it may reference prefixes/paths the message
        # stream never carries, and the payload must contain them.
        prefix_column, path_column = encode_rib(rib, stream.pool)
        return cls(
            peer_as=peer_as,
            payload=stream.to_payload(),
            rib_prefix=prefix_column.tobytes(),
            rib_path=path_column.tobytes(),
        )


@dataclass(frozen=True)
class _ReplayOptions:
    """The replay knobs every worker applies identically."""

    local_as: int = 1
    swifted: bool = True
    swift_config: Optional[SwiftConfig] = None
    chunk_messages: int = 50000
    local_pref: int = 100
    backup_session: bool = True
    column_native: bool = True
    kernel_backend: Optional[str] = None


def _available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware).

    ``os.cpu_count()`` reports the machine; under cgroup/affinity limits
    (CI runners, containers) ``sched_getaffinity`` is the honest worker
    budget.  Falls back to ``cpu_count`` where unavailable (macOS).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:
        return os.cpu_count() or 1


def _replay_job(job: SessionJob, options: _ReplayOptions) -> MonthReplayResult:
    """Rebuild one session from its buffers and replay it (worker body).

    Runs in the worker process under the pool driver — and inline for
    ``workers=1`` — so sequential and fleet replay share every instruction
    that matters for parity.  Events are always collected: the multisets
    are what the fleet aggregation is checked against.
    """
    stream = ColumnarTrace.from_payload(job.payload)
    prefix_column = array("I")
    prefix_column.frombytes(job.rib_prefix)
    path_column = array("I")
    path_column.frombytes(job.rib_path)
    rib = decode_rib(prefix_column, path_column, stream.pool)
    return replay_stream(
        stream,
        rib,
        peer_as=job.peer_as,
        local_as=options.local_as,
        swift_config=options.swift_config,
        chunk_messages=options.chunk_messages,
        swifted=options.swifted,
        local_pref=options.local_pref,
        backup_session=options.backup_session,
        collect_events=True,
        column_native=options.column_native,
        kernel_backend=options.kernel_backend,
    )


@dataclass
class FleetReplayResult:
    """The aggregated outcome of one fleet replay.

    ``sessions`` is ordered by peer AS regardless of worker completion
    order, and every aggregate below is derived from canonical per-session
    multisets — the whole result is a deterministic function of the corpus,
    whether it was replayed by one process or sixteen.
    """

    workers: int
    wall_seconds: float
    sessions: List[MonthReplayResult] = field(default_factory=list)

    @property
    def session_count(self) -> int:
        """Number of replayed sessions."""
        return len(self.sessions)

    @property
    def message_count(self) -> int:
        """Total messages replayed across the fleet."""
        return sum(result.message_count for result in self.sessions)

    @property
    def losses(self) -> int:
        """Total loss-of-reachability events across the fleet."""
        return sum(result.losses for result in self.sessions)

    @property
    def recoveries(self) -> int:
        """Total recovery events across the fleet."""
        return sum(result.recoveries for result in self.sessions)

    @property
    def reroutes(self) -> int:
        """Total reroute activations across the fleet."""
        return sum(result.reroutes for result in self.sessions)

    @property
    def replay_seconds(self) -> float:
        """Summed per-session replay time (the sequential-equivalent cost)."""
        return sum(result.wall_seconds for result in self.sessions)

    @property
    def messages_per_second(self) -> float:
        """Fleet throughput in messages per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.message_count / self.wall_seconds

    def _merged(self, field_name: str) -> EventMultiset:
        merged: Counter = Counter()
        for result in self.sessions:
            events = getattr(result, field_name)
            if events:
                merged.update(dict(events))
        return tuple(sorted(merged.items()))

    @property
    def loss_events(self) -> EventMultiset:
        """Fleet-wide loss multiset (canonical sorted form)."""
        return self._merged("loss_events")

    @property
    def recovery_events(self) -> EventMultiset:
        """Fleet-wide recovery multiset (canonical sorted form)."""
        return self._merged("recovery_events")

    @property
    def reroute_events(self) -> EventMultiset:
        """Fleet-wide reroute multiset (canonical sorted form)."""
        return self._merged("reroute_events")

    def signature(self) -> tuple:
        """The deterministic content of the whole fleet run.

        Byte-for-byte comparable (e.g. via ``pickle.dumps``) between a
        process-pool run and a sequential run of the same corpus; excludes
        wall-clock fields and the worker count.
        """
        return tuple(result.signature() for result in self.sessions)


def iter_session_jobs(
    config: Optional[SyntheticTraceConfig] = None,
    peer_ases: Optional[Sequence[int]] = None,
) -> Iterator[SessionJob]:
    """Package a synthetic corpus into per-session jobs, lazily.

    Streams come from :func:`cached_columnar_stream` (generated once,
    mmap-reloaded afterwards); RIB snapshots are rebuilt deterministically
    from the generator's topology and interned into each stream's pool.
    Defaults to every peer of the configured fleet.  Yielding one job at a
    time keeps the parent's footprint at O(in-flight sessions) — the pool
    driver submits with a bounded backlog, so a 30-session month corpus
    never has every session's buffers resident at once.
    """
    config = config or DEFAULT_REPLAY_CONFIG
    generator_stream = SyntheticTraceGenerator(config).stream()
    if peer_ases is None:
        peer_ases = [peer.peer_as for peer in generator_stream.peers]
    for peer_as in peer_ases:
        stream = cached_columnar_stream(config, peer_as)
        rib = generator_stream.rib_of(peer_as)
        yield SessionJob.from_stream(peer_as, stream, rib)


def build_session_jobs(
    config: Optional[SyntheticTraceConfig] = None,
    peer_ases: Optional[Sequence[int]] = None,
) -> List[SessionJob]:
    """Eager :func:`iter_session_jobs` for callers that reuse the job list."""
    return list(iter_session_jobs(config, peer_ases=peer_ases))


def replay_jobs(
    jobs: Iterable[SessionJob],
    workers: Optional[int] = None,
    local_as: int = 1,
    swifted: bool = True,
    swift_config: Optional[SwiftConfig] = None,
    chunk_messages: int = 50000,
    local_pref: int = 100,
    backup_session: bool = True,
    mp_context: Optional[str] = None,
    column_native: bool = True,
    kernel_backend: Optional[str] = None,
) -> FleetReplayResult:
    """Replay session jobs, one worker process per session.

    ``jobs`` may be a lazy iterator (see :func:`iter_session_jobs`): the
    pool driver keeps at most ``2 x workers`` jobs in flight, so the
    corpus's buffers never all sit in the parent at once.  ``workers``
    defaults to ``min(job count, usable cpus)`` for sequences and the
    usable-cpu count for iterators of unknown length (affinity-aware, see
    :func:`_available_cpus`); ``workers=1`` replays inline through the same
    worker body, which is the sequential baseline the parity tests compare
    against.  ``mp_context`` picks the multiprocessing start method
    (``"fork"`` where available, else the platform default).
    ``column_native=False`` drives every worker through the materialising
    object path instead of the column-native one — the comparator of the
    columnar parity matrix (``tests/test_columnar_inference.py``).
    ``kernel_backend`` selects the column-kernel backend in every worker
    (``None`` auto-selects: numpy when importable, stdlib otherwise; see
    :mod:`repro.core.kernels`) — backends never change the result
    signature, only replay speed.
    """
    options = _ReplayOptions(
        local_as=local_as,
        swifted=swifted,
        swift_config=swift_config,
        chunk_messages=chunk_messages,
        local_pref=local_pref,
        backup_session=backup_session,
        column_native=column_native,
        kernel_backend=kernel_backend,
    )
    job_count = len(jobs) if isinstance(jobs, Sequence) else None
    if workers is None:
        workers = _available_cpus()
        if job_count is not None:
            workers = min(workers, job_count)
    workers = max(1, workers if job_count is None else min(workers, max(job_count, 1)))

    begin = time.perf_counter()
    if workers == 1:
        results = [_replay_job(job, options) for job in jobs]
    else:
        results = _replay_in_pool(jobs, options, workers, mp_context)
    wall_seconds = time.perf_counter() - begin

    results.sort(key=lambda result: result.peer_as)
    if len(results) <= 1:
        workers = 1  # a lone job never left this process
    return FleetReplayResult(
        workers=workers, wall_seconds=wall_seconds, sessions=results
    )


def _replay_in_pool(
    jobs: Iterable[SessionJob],
    options: _ReplayOptions,
    workers: int,
    mp_context: Optional[str],
) -> List[MonthReplayResult]:
    """Fan jobs over a process pool with a bounded submission backlog."""
    import multiprocessing
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

    if mp_context is None:
        mp_context = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    context = multiprocessing.get_context(mp_context) if mp_context else None
    backlog = workers * 2
    results: List[MonthReplayResult] = []
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        pending = set()
        for job in jobs:
            if len(pending) >= backlog:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                results.extend(future.result() for future in done)
            pending.add(pool.submit(_replay_job, job, options))
        results.extend(future.result() for future in pending)
    return results


def replay_fleet(
    config: Optional[SyntheticTraceConfig] = None,
    peer_ases: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    **replay_options,
) -> FleetReplayResult:
    """Replay every session of a (cached) synthetic corpus concurrently.

    The month-replay driver scaled out: streams the per-session jobs from
    :func:`iter_session_jobs` (bounded parent footprint) over
    :func:`replay_jobs`.  Pass ``workers=1`` for the sequential baseline;
    the default corpus is :data:`~repro.experiments.month_replay.DEFAULT_REPLAY_CONFIG`,
    shared with the single-session driver.
    """
    config = config or DEFAULT_REPLAY_CONFIG
    return replay_jobs(
        iter_session_jobs(config, peer_ases=peer_ases),
        workers=workers,
        **replay_options,
    )


def format_fleet_result(result: FleetReplayResult) -> str:
    """Render the fleet counters, one row per session plus totals."""
    rows: List[Tuple] = [
        (
            session.peer_as,
            session.message_count,
            session.reroutes,
            session.losses,
            session.recoveries,
            round(session.wall_seconds, 2),
        )
        for session in result.sessions
    ]
    rows.append(
        (
            "total",
            result.message_count,
            result.reroutes,
            result.losses,
            result.recoveries,
            round(result.wall_seconds, 2),
        )
    )
    return format_table(
        ["session", "messages", "reroutes", "losses", "recoveries", "seconds"],
        rows,
        title=(
            f"Fleet replay: {result.session_count} sessions, "
            f"{result.workers} workers ({int(result.messages_per_second)} msg/s)"
        ),
    )
