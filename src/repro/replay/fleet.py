"""Process-pool fleet replay over shared columnar buffers.

§4.1 of the paper makes burst inference a *per-session* computation — no
state crosses peering sessions — so a month-scale corpus replay is
embarrassingly parallel: one worker per session, no coordination beyond the
final aggregation.  This driver exploits exactly that:

* each session's input ships to its worker as a **raw-buffer payload**
  (:meth:`~repro.traces.columnar.ColumnarTrace.to_payload` — plain
  ``bytes`` per column, the session's pre-trace RIB as two more column
  buffers over the same interning pool), so the inter-process transport is
  a handful of memcpys, never an object-graph pickle;
* each worker rebuilds the trace with
  :meth:`~repro.traces.columnar.ColumnarTrace.from_payload`, replays it
  through :func:`repro.experiments.month_replay.replay_stream` (SWIFTED or
  speaker-only) and returns the session's
  :class:`~repro.experiments.month_replay.MonthReplayResult` — counters
  plus canonical loss / recovery / reroute multisets;
* the driver aggregates **deterministically**: per-session results are
  ordered by peer AS and the fleet-level multisets are canonical sorted
  forms, so a fleet run is byte-identical to a sequential replay of the
  same corpus — asserted, not assumed, by the parity suite
  (``tests/test_fleet_replay.py``).

The driver is also **self-healing** (see ``src/repro/replay/README.md`` for
the full contract): each job runs under a bounded retry with exponential
backoff + deterministic jitter (:class:`RetryPolicy`), an optional per-job
timeout reclaims hung workers, and a pool lost to a hard worker death
(:class:`~concurrent.futures.BrokenExecutor`) is rebuilt with its in-flight
jobs resubmitted.  ``strict=True`` (the default) raises
:class:`FleetReplayError` once a session exhausts its attempts;
``strict=False`` degrades gracefully instead — surviving sessions aggregate
as usual and the casualties are listed in
:attr:`FleetReplayResult.failed_sessions` (a degraded result changes its
:meth:`~FleetReplayResult.signature`, so it can never pass for a complete
run).  When every retry succeeds the result — signature included — is
byte-identical to a fault-free run.

Workers default to a forked pool (cheap on Linux; the payload is still
shipped explicitly, so a ``spawn`` context works identically).
``workers=1`` — or a single job — replays inline in this process through
the *same* job/worker code path, which is what the parity tests compare
against.
"""

from __future__ import annotations

import os
import time
from array import array
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.swifted_router import SwiftConfig
from repro.experiments.month_replay import (
    DEFAULT_REPLAY_CONFIG,
    EventMultiset,
    MonthReplayResult,
    replay_stream,
)
from repro.metrics.tables import format_table
from repro.testing import faults
from repro.traces.columnar import ColumnarTrace, decode_rib, encode_rib
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
    cached_columnar_stream,
)
from repro.util.retry import RetryPolicy

__all__ = [
    "FailedSession",
    "FleetReplayError",
    "FleetReplayResult",
    "RetryPolicy",
    "SessionJob",
    "build_session_jobs",
    "format_fleet_result",
    "iter_session_jobs",
    "replay_fleet",
    "replay_jobs",
]


class FleetReplayError(RuntimeError):
    """A session exhausted its retry budget under ``strict=True``."""


@dataclass(frozen=True)
class FailedSession:
    """One session the fleet driver gave up on (``strict=False`` runs).

    ``kind`` is how the *final* attempt died: ``"error"`` (the job raised),
    ``"hang"`` (blew the per-job timeout), ``"broken-pool"`` (its worker
    process died, taking the pool with it).
    """

    peer_as: int
    attempts: int
    kind: str
    error: str


@dataclass(frozen=True)
class SessionJob:
    """One session's replay input in ship-across-processes form.

    ``payload`` is the stream's raw-buffer export; ``rib_prefix`` /
    ``rib_path`` are the pre-trace Adj-RIB-In snapshot encoded as two
    ``u32`` column buffers indexing into the payload's interning pool (the
    RIB is interned *before* the payload export, so every index resolves).
    """

    peer_as: int
    payload: dict
    rib_prefix: bytes
    rib_path: bytes

    @classmethod
    def from_stream(
        cls, peer_as: int, stream: ColumnarTrace, rib: dict
    ) -> "SessionJob":
        """Package a session's stream + RIB snapshot into a job."""
        # Intern the RIB first: it may reference prefixes/paths the message
        # stream never carries, and the payload must contain them.
        prefix_column, path_column = encode_rib(rib, stream.pool)
        return cls(
            peer_as=peer_as,
            payload=stream.to_payload(),
            rib_prefix=prefix_column.tobytes(),
            rib_path=path_column.tobytes(),
        )


@dataclass(frozen=True)
class _ReplayOptions:
    """The replay knobs every worker applies identically."""

    local_as: int = 1
    swifted: bool = True
    swift_config: Optional[SwiftConfig] = None
    chunk_messages: int = 50000
    local_pref: int = 100
    backup_session: bool = True
    column_native: bool = True
    kernel_backend: Optional[str] = None
    fault_plan: Optional[faults.FaultPlan] = None
    validate: Optional[str] = None


def _available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware).

    ``os.cpu_count()`` reports the machine; under cgroup/affinity limits
    (CI runners, containers) ``sched_getaffinity`` is the honest worker
    budget.  Falls back to ``cpu_count`` where unavailable (macOS).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:
        return os.cpu_count() or 1


def _replay_job(
    job: SessionJob,
    options: _ReplayOptions,
    attempt: int = 0,
    in_worker: bool = False,
) -> MonthReplayResult:
    """Rebuild one session from its buffers and replay it (worker body).

    Runs in the worker process under the pool driver — and inline for
    ``workers=1`` — so sequential and fleet replay share every instruction
    that matters for parity.  Events are always collected: the multisets
    are what the fleet aggregation is checked against.

    ``attempt`` is the retry ordinal (0 = first try); the fault harness
    keys its self-healing on it, so a spec with ``times=1`` fails the first
    attempt in *any* process and passes the retry.  ``in_worker`` tells the
    harness a supervising driver is watching — only then do ``kill`` /
    ``hang`` faults take the process down for real.
    """
    injector = faults.injector_for(options.fault_plan)
    installed = False
    if options.fault_plan is not None and injector is not None:
        # Make the explicitly-passed plan ambient for the duration of the
        # job, so store/cache hook sites inside the worker see it too.
        faults.install_injector(injector)
        installed = True
    try:
        if injector is not None:
            injector.fire(
                "fleet.worker",
                key=f"session:{job.peer_as}",
                attempt=attempt,
                in_worker=in_worker,
            )
        stream = ColumnarTrace.from_payload(job.payload, validate=options.validate)
        prefix_column = array("I")
        prefix_column.frombytes(job.rib_prefix)
        path_column = array("I")
        path_column.frombytes(job.rib_path)
        rib = decode_rib(prefix_column, path_column, stream.pool)
        return replay_stream(
            stream,
            rib,
            peer_as=job.peer_as,
            local_as=options.local_as,
            swift_config=options.swift_config,
            chunk_messages=options.chunk_messages,
            swifted=options.swifted,
            local_pref=options.local_pref,
            backup_session=options.backup_session,
            collect_events=True,
            column_native=options.column_native,
            kernel_backend=options.kernel_backend,
        )
    finally:
        if installed:
            faults.install_injector(None)


@dataclass
class FleetReplayResult:
    """The aggregated outcome of one fleet replay.

    ``sessions`` is ordered by peer AS regardless of worker completion
    order, and every aggregate below is derived from canonical per-session
    multisets — the whole result is a deterministic function of the corpus,
    whether it was replayed by one process or sixteen.

    ``failed_sessions`` is empty unless a ``strict=False`` run gave up on
    some sessions (the result is then *degraded*: aggregates cover the
    survivors only).  ``retries`` and ``pool_restarts`` count the driver's
    recovery work; neither affects :meth:`signature`.
    """

    workers: int
    wall_seconds: float
    sessions: List[MonthReplayResult] = field(default_factory=list)
    failed_sessions: List[FailedSession] = field(default_factory=list)
    retries: int = 0
    pool_restarts: int = 0

    @property
    def degraded(self) -> bool:
        """True when some sessions were abandoned (``strict=False`` only)."""
        return bool(self.failed_sessions)

    @property
    def session_count(self) -> int:
        """Number of replayed sessions."""
        return len(self.sessions)

    @property
    def message_count(self) -> int:
        """Total messages replayed across the fleet."""
        return sum(result.message_count for result in self.sessions)

    @property
    def losses(self) -> int:
        """Total loss-of-reachability events across the fleet."""
        return sum(result.losses for result in self.sessions)

    @property
    def recoveries(self) -> int:
        """Total recovery events across the fleet."""
        return sum(result.recoveries for result in self.sessions)

    @property
    def reroutes(self) -> int:
        """Total reroute activations across the fleet."""
        return sum(result.reroutes for result in self.sessions)

    @property
    def replay_seconds(self) -> float:
        """Summed per-session replay time (the sequential-equivalent cost)."""
        return sum(result.wall_seconds for result in self.sessions)

    @property
    def messages_per_second(self) -> float:
        """Fleet throughput in messages per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.message_count / self.wall_seconds

    def _merged(self, field_name: str) -> EventMultiset:
        merged: Counter = Counter()
        for result in self.sessions:
            events = getattr(result, field_name)
            if events:
                merged.update(dict(events))
        return tuple(sorted(merged.items()))

    @property
    def loss_events(self) -> EventMultiset:
        """Fleet-wide loss multiset (canonical sorted form)."""
        return self._merged("loss_events")

    @property
    def recovery_events(self) -> EventMultiset:
        """Fleet-wide recovery multiset (canonical sorted form)."""
        return self._merged("recovery_events")

    @property
    def reroute_events(self) -> EventMultiset:
        """Fleet-wide reroute multiset (canonical sorted form)."""
        return self._merged("reroute_events")

    def signature(self) -> tuple:
        """The deterministic content of the whole fleet run.

        Byte-for-byte comparable (e.g. via ``pickle.dumps``) between a
        process-pool run and a sequential run of the same corpus; excludes
        wall-clock fields, the worker count and the retry counters.  A run
        where every retry succeeded is indistinguishable from a fault-free
        one; a *degraded* run appends a marker naming the abandoned
        sessions, so it can never be mistaken for a complete run.
        """
        session_signatures = tuple(result.signature() for result in self.sessions)
        if not self.failed_sessions:
            return session_signatures
        casualties = tuple(sorted(failed.peer_as for failed in self.failed_sessions))
        return (session_signatures, ("degraded", casualties))


def iter_session_jobs(
    config: Optional[SyntheticTraceConfig] = None,
    peer_ases: Optional[Sequence[int]] = None,
) -> Iterator[SessionJob]:
    """Package a synthetic corpus into per-session jobs, lazily.

    Streams come from :func:`cached_columnar_stream` (generated once,
    mmap-reloaded afterwards); RIB snapshots are rebuilt deterministically
    from the generator's topology and interned into each stream's pool.
    Defaults to every peer of the configured fleet.  Yielding one job at a
    time keeps the parent's footprint at O(in-flight sessions) — the pool
    driver submits with a bounded backlog, so a 30-session month corpus
    never has every session's buffers resident at once.
    """
    config = config or DEFAULT_REPLAY_CONFIG
    generator_stream = SyntheticTraceGenerator(config).stream()
    if peer_ases is None:
        peer_ases = [peer.peer_as for peer in generator_stream.peers]
    for peer_as in peer_ases:
        stream = cached_columnar_stream(config, peer_as)
        rib = generator_stream.rib_of(peer_as)
        yield SessionJob.from_stream(peer_as, stream, rib)


def build_session_jobs(
    config: Optional[SyntheticTraceConfig] = None,
    peer_ases: Optional[Sequence[int]] = None,
) -> List[SessionJob]:
    """Eager :func:`iter_session_jobs` for callers that reuse the job list."""
    return list(iter_session_jobs(config, peer_ases=peer_ases))


def _resolve_retry_policy(
    retry: Union[None, int, RetryPolicy], timeout: Optional[float]
) -> RetryPolicy:
    """Normalise the ``retry`` / ``timeout`` knobs into one policy."""
    if retry is None:
        policy = RetryPolicy()
    elif isinstance(retry, RetryPolicy):
        policy = retry
    elif isinstance(retry, int) and not isinstance(retry, bool) and retry >= 0:
        policy = RetryPolicy(max_attempts=retry + 1)
    else:
        raise ValueError(
            f"retry must be None, a retry count >= 0 or a RetryPolicy, got {retry!r}"
        )
    if timeout is not None:
        policy = replace(policy, timeout=timeout)
    return policy


def replay_jobs(
    jobs: Iterable[SessionJob],
    workers: Optional[int] = None,
    local_as: int = 1,
    swifted: bool = True,
    swift_config: Optional[SwiftConfig] = None,
    chunk_messages: int = 50000,
    local_pref: int = 100,
    backup_session: bool = True,
    mp_context: Optional[str] = None,
    column_native: bool = True,
    kernel_backend: Optional[str] = None,
    strict: bool = True,
    retry: Union[None, int, RetryPolicy] = None,
    timeout: Optional[float] = None,
    fault_plan: Optional[faults.FaultPlan] = None,
    validate: Optional[str] = None,
) -> FleetReplayResult:
    """Replay session jobs, one worker process per session.

    ``jobs`` may be a lazy iterator (see :func:`iter_session_jobs`): the
    pool driver keeps at most ``2 x workers`` jobs in flight, so the
    corpus's buffers never all sit in the parent at once.  ``workers``
    defaults to ``min(job count, usable cpus)`` for sequences and the
    usable-cpu count for iterators of unknown length (affinity-aware, see
    :func:`_available_cpus`); an explicit ``workers`` must be a positive
    integer — ``workers=0`` or a negative count raises :class:`ValueError`.
    ``workers=1`` replays inline through the same worker body, which is the
    sequential baseline the parity tests compare against.  ``mp_context``
    picks the multiprocessing start method (``"fork"`` where available,
    else the platform default).  ``column_native=False`` drives every
    worker through the materialising object path instead of the
    column-native one — the comparator of the columnar parity matrix
    (``tests/test_columnar_inference.py``).  ``kernel_backend`` selects the
    column-kernel backend in every worker (``None`` auto-selects: numpy
    when importable, stdlib otherwise; see :mod:`repro.core.kernels`) —
    backends never change the result signature, only replay speed.

    Failure handling: every job runs under ``retry`` (``None`` → the
    default :class:`RetryPolicy`; an int ``n`` → ``n`` retries on top of
    the first try; a :class:`RetryPolicy` → used as-is) with exponential
    backoff between attempts; ``timeout`` bounds each pooled attempt
    (hung workers are reclaimed and the job is retried); a pool broken by
    a hard worker death is rebuilt and its in-flight jobs resubmitted.
    ``strict=True`` raises :class:`FleetReplayError` once any session
    exhausts its attempts; ``strict=False`` returns a *degraded* result
    aggregating the survivors, with the casualties in
    :attr:`FleetReplayResult.failed_sessions`.  ``fault_plan`` arms the
    deterministic fault harness (:mod:`repro.testing.faults`) inside every
    worker; ``validate`` (``"strict"`` / ``"lenient"``) turns on payload
    ingestion validation in the worker body.
    """
    if workers is not None and (
        isinstance(workers, bool) or not isinstance(workers, int) or workers < 1
    ):
        raise ValueError(
            f"workers must be a positive integer (or None for auto), got {workers!r}"
        )
    if validate not in (None, "strict", "lenient"):
        raise ValueError(
            f"validate must be None, 'strict' or 'lenient', got {validate!r}"
        )
    policy = _resolve_retry_policy(retry, timeout)
    options = _ReplayOptions(
        local_as=local_as,
        swifted=swifted,
        swift_config=swift_config,
        chunk_messages=chunk_messages,
        local_pref=local_pref,
        backup_session=backup_session,
        column_native=column_native,
        kernel_backend=kernel_backend,
        fault_plan=fault_plan,
        validate=validate,
    )
    job_count = len(jobs) if isinstance(jobs, Sequence) else None
    if workers is None:
        workers = _available_cpus()
        if job_count is not None:
            workers = min(workers, job_count)
    workers = max(1, workers if job_count is None else min(workers, max(job_count, 1)))

    begin = time.perf_counter()
    if workers == 1:
        results, failed, retries, restarts = _replay_inline(
            jobs, options, policy, strict
        )
    else:
        results, failed, retries, restarts = _replay_in_pool(
            jobs, options, workers, mp_context, policy, strict
        )
    wall_seconds = time.perf_counter() - begin

    results.sort(key=lambda result: result.peer_as)
    failed.sort(key=lambda failure: failure.peer_as)
    if len(results) <= 1 and not failed:
        workers = 1  # a lone job never left this process
    return FleetReplayResult(
        workers=workers,
        wall_seconds=wall_seconds,
        sessions=results,
        failed_sessions=failed,
        retries=retries,
        pool_restarts=restarts,
    )


def _replay_inline(
    jobs: Iterable[SessionJob],
    options: _ReplayOptions,
    policy: RetryPolicy,
    strict: bool,
) -> Tuple[List[MonthReplayResult], List[FailedSession], int, int]:
    """The ``workers=1`` path: sequential replay with the same retry rules.

    ``kill`` / ``hang`` faults are downgraded to raised errors here
    (``in_worker=False``), so an inline run exercises the retry logic
    without taking the calling process down; per-job timeouts need the
    pool's preemption and do not apply.
    """
    results: List[MonthReplayResult] = []
    failed: List[FailedSession] = []
    retries = 0
    for job in jobs:
        attempt = 0
        while True:
            try:
                results.append(
                    _replay_job(job, options, attempt=attempt, in_worker=False)
                )
                break
            except Exception as error:
                if attempt + 1 < policy.max_attempts:
                    time.sleep(policy.delay(attempt))
                    attempt += 1
                    retries += 1
                    continue
                if strict:
                    raise FleetReplayError(
                        f"session {job.peer_as} failed after {attempt + 1} "
                        f"attempt(s): {error!r}"
                    ) from error
                failed.append(
                    FailedSession(
                        peer_as=job.peer_as,
                        attempts=attempt + 1,
                        kind="error",
                        error=repr(error),
                    )
                )
                break
    return results, failed, retries, 0


def _terminate_pool(pool) -> None:
    """Shut a pool down hard, leaving no worker process behind.

    Used both for reclaiming a broken/hung pool and for the normal exit
    path (where every worker is already idle).  Terminate-then-join is
    what guarantees a worker stuck in an injected hang actually dies
    instead of outliving the driver as a zombie.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for process in processes:
        if process.is_alive():
            process.terminate()
    pool.shutdown(wait=True, cancel_futures=True)
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)


def _replay_in_pool(
    jobs: Iterable[SessionJob],
    options: _ReplayOptions,
    workers: int,
    mp_context: Optional[str],
    policy: RetryPolicy,
    strict: bool,
) -> Tuple[List[MonthReplayResult], List[FailedSession], int, int]:
    """Fan jobs over a supervised process pool with a bounded backlog.

    The supervisor tracks a per-future deadline (when the policy has a
    timeout), retries failures with backoff through a not-before-ready
    queue, and rebuilds the pool when it breaks (hard worker death) or
    when a job hangs — resubmitting in-flight work: the hung/broken job is
    charged an attempt, innocent bystanders are requeued uncharged.
    """
    import multiprocessing
    from concurrent.futures import (
        FIRST_COMPLETED,
        BrokenExecutor,
        ProcessPoolExecutor,
        wait,
    )

    if mp_context is None:
        mp_context = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    context = multiprocessing.get_context(mp_context) if mp_context else None
    backlog = workers * 2
    results: List[MonthReplayResult] = []
    failed: List[FailedSession] = []
    retries = 0
    restarts = 0
    job_iter = iter(jobs)
    exhausted = False
    # future -> (job, attempt, deadline | None)
    pending: dict = {}
    # (not-before monotonic time, job, attempt) — the retry/resubmit queue.
    ready: List[Tuple[float, SessionJob, int]] = []

    def charge(job: SessionJob, attempt: int, kind: str, error: object) -> None:
        """One attempt spent; requeue with backoff or give up on the job."""
        nonlocal retries
        if attempt + 1 < policy.max_attempts:
            retries += 1
            ready.append((time.monotonic() + policy.delay(attempt), job, attempt + 1))
        elif strict:
            raise FleetReplayError(
                f"session {job.peer_as} failed after {attempt + 1} attempt(s) "
                f"({kind}): {error!r}"
            )
        else:
            failed.append(
                FailedSession(
                    peer_as=job.peer_as,
                    attempts=attempt + 1,
                    kind=kind,
                    error=repr(error),
                )
            )

    def drain(future, job: SessionJob, attempt: int) -> bool:
        """Collect a finished future; returns True if it broke the pool."""
        try:
            results.append(future.result())
        except BrokenExecutor as error:
            charge(job, attempt, "broken-pool", error)
            return True
        except Exception as error:
            charge(job, attempt, "error", error)
        return False

    pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)

    def submit(job: SessionJob, attempt: int) -> None:
        deadline = (
            None if policy.timeout is None else time.monotonic() + policy.timeout
        )
        future = pool.submit(_replay_job, job, options, attempt, True)
        pending[future] = (job, attempt, deadline)

    def rebuild_pool() -> None:
        """Reclaim every worker process and start a fresh pool."""
        nonlocal pool, restarts
        _terminate_pool(pool)
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        restarts += 1

    def evacuate(broken_futures: set) -> None:
        """Empty ``pending`` around a pool rebuild.

        Futures named in ``broken_futures`` are charged an attempt; any
        other in-flight job is an innocent bystander and is requeued
        uncharged (completed stragglers keep their results).
        """
        now = time.monotonic()
        for future, (job, attempt, _) in list(pending.items()):
            del pending[future]
            if future in broken_futures:
                continue  # already charged by the caller
            if future.done():
                drain(future, job, attempt)
            else:
                ready.append((now, job, attempt))

    try:
        while True:
            now = time.monotonic()
            for entry in [entry for entry in ready if entry[0] <= now]:
                ready.remove(entry)
                submit(entry[1], entry[2])
            while not exhausted and len(pending) + len(ready) < backlog:
                try:
                    job = next(job_iter)
                except StopIteration:
                    exhausted = True
                    break
                submit(job, 0)
            if not pending and not ready and exhausted:
                break
            if not pending:
                # Only backoff timers remain; sleep until the nearest one.
                time.sleep(max(0.0, min(entry[0] for entry in ready) - time.monotonic()))
                continue

            wakeups = [deadline for (_, _, deadline) in pending.values() if deadline]
            wakeups.extend(entry[0] for entry in ready)
            timeout = (
                max(0.0, min(wakeups) - time.monotonic()) if wakeups else None
            )
            done, _ = wait(set(pending), timeout=timeout, return_when=FIRST_COMPLETED)

            broken = False
            charged: set = set()
            for future in done:
                job, attempt, _ = pending.pop(future)
                if drain(future, job, attempt):
                    broken = True
                    charged.add(future)
            if broken:
                # The pool is unusable; every other in-flight future will
                # never complete.  Salvage what finished, requeue the rest.
                evacuate(charged)
                rebuild_pool()
                continue

            now = time.monotonic()
            hung = {
                future
                for future, (_, _, deadline) in pending.items()
                if deadline is not None and now >= deadline and not future.done()
            }
            if hung:
                for future in hung:
                    job, attempt, _ = pending.pop(future)
                    charge(job, attempt, "hang", f"no result within {policy.timeout:g}s")
                # A hung worker can only be reclaimed by killing its
                # process, which takes the pool with it.
                evacuate(set())
                rebuild_pool()
    finally:
        _terminate_pool(pool)
    return results, failed, retries, restarts


def replay_fleet(
    config: Optional[SyntheticTraceConfig] = None,
    peer_ases: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    **replay_options,
) -> FleetReplayResult:
    """Replay every session of a (cached) synthetic corpus concurrently.

    The month-replay driver scaled out: streams the per-session jobs from
    :func:`iter_session_jobs` (bounded parent footprint) over
    :func:`replay_jobs`.  Pass ``workers=1`` for the sequential baseline;
    the default corpus is :data:`~repro.experiments.month_replay.DEFAULT_REPLAY_CONFIG`,
    shared with the single-session driver.
    """
    config = config or DEFAULT_REPLAY_CONFIG
    return replay_jobs(
        iter_session_jobs(config, peer_ases=peer_ases),
        workers=workers,
        **replay_options,
    )


def format_fleet_result(result: FleetReplayResult) -> str:
    """Render the fleet counters, one row per session plus totals."""
    rows: List[Tuple] = [
        (
            session.peer_as,
            session.message_count,
            session.reroutes,
            session.losses,
            session.recoveries,
            round(session.wall_seconds, 2),
        )
        for session in result.sessions
    ]
    rows.append(
        (
            "total",
            result.message_count,
            result.reroutes,
            result.losses,
            result.recoveries,
            round(result.wall_seconds, 2),
        )
    )
    title = (
        f"Fleet replay: {result.session_count} sessions, "
        f"{result.workers} workers ({int(result.messages_per_second)} msg/s)"
    )
    if result.degraded:
        casualties = ", ".join(str(f.peer_as) for f in result.failed_sessions)
        title += f" — DEGRADED, lost sessions: {casualties}"
    return format_table(
        ["session", "messages", "reroutes", "losses", "recoveries", "seconds"],
        rows,
        title=title,
    )
