"""Fleet-parallel replay: per-session process workers over columnar buffers.

The paper's per-session independence (§4.1) makes corpus replay
embarrassingly parallel; this package ships each session's columnar stream
to a worker process as raw buffers and aggregates the per-session results
deterministically.  See :mod:`repro.replay.fleet` and ``README.md`` in this
directory.
"""

from repro.replay.fleet import (
    FailedSession,
    FleetReplayError,
    FleetReplayResult,
    RetryPolicy,
    SessionJob,
    build_session_jobs,
    format_fleet_result,
    iter_session_jobs,
    replay_fleet,
    replay_jobs,
)

__all__ = [
    "FailedSession",
    "FleetReplayError",
    "FleetReplayResult",
    "RetryPolicy",
    "SessionJob",
    "build_session_jobs",
    "format_fleet_result",
    "iter_session_jobs",
    "replay_fleet",
    "replay_jobs",
]
