"""Trips durability-ordering once: a bare write of a persistent artifact.

Loaded masquerading as a ``src/repro/`` module.
"""

import json


def save_state(path, state):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(state, handle)
