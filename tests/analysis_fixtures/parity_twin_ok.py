"""Quiet under parity-pair: signatures match; the twin may add a trailing
defaulted knob and extra private helpers."""

__all__ = [
    "find_crossing",
    "run_lengths",
]


def find_crossing(values, threshold, start=0, fast=True):
    return _scan(values, threshold, start) if fast else -1


def run_lengths(values):
    return [1 for _ in values]


def _scan(values, threshold, start):
    for index in range(start, len(values)):
        if values[index] > threshold:
            return index
    return -1
