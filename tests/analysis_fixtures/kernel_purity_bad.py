"""Trips kernel-purity once: numpy imported by the stdlib parity reference.

Loaded masquerading as ``src/repro/core/kernels/stdlib.py``.
"""

import numpy


def find_crossing(times, threshold):
    return [t for t in times if t > threshold and numpy is not None]
