"""Reference side of the fixture module-parity pair."""

__all__ = [
    "find_crossing",
    "run_lengths",
]


def find_crossing(values, threshold, start=0):
    for index in range(start, len(values)):
        if values[index] > threshold:
            return index
    return -1


def run_lengths(values):
    return [1 for _ in values]
