"""Trips bench-schema once: writes a BENCH_ artifact without bench_env().

Loaded masquerading as a ``benchmarks/`` module.
"""

import json


def record(results):
    with open("BENCH_fixture.json", "w", encoding="utf-8") as handle:
        json.dump(results, handle)
