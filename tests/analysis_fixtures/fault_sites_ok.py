"""Quiet under fault-site-registry: registered sites only, via a hook
call, a plan-grammar literal and an f-string plan."""

PLAN = "kill@fixture.known;after=2"


def hook(injector, key):
    injector.fire("fixture.known", key=key)
    return f"io_error@fixture.known;match={key}"
