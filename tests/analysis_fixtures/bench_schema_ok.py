"""Quiet under bench-schema: the artifact payload carries bench_env()."""

import json

from conftest import bench_env


def record(results):
    payload = dict(results, **bench_env())
    with open("BENCH_fixture.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
