"""Trips parity-pair once: shared function missing from ``__all__``."""

__all__ = [
    "find_crossing",
]


def find_crossing(values, threshold, start=0):
    for index in range(start, len(values)):
        if values[index] > threshold:
            return index
    return -1


def run_lengths(values):
    return [1 for _ in values]
