"""Trips parity-pair once: ``find_crossing`` renamed a parameter."""

__all__ = [
    "find_crossing",
    "run_lengths",
]


def find_crossing(values, limit, start=0):
    for index in range(start, len(values)):
        if values[index] > limit:
            return index
    return -1


def run_lengths(values):
    return [1 for _ in values]
