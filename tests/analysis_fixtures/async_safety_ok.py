"""Quiet under async-safety: async sleeps, blocking work in sync helpers."""

import asyncio
import time


async def poll_feed(feed):
    while not feed.ready():
        await asyncio.sleep(0.1)

    def drain():  # sync helper: defining (not calling) blocking code is fine
        time.sleep(0.1)
        with open(feed.path) as handle:
            return handle.read()

    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, drain)
