"""Quiet under kernel-purity: guarded numpy import, read-only columns.

Loaded masquerading as a ``src/repro/core/kernels/`` module (not the
stdlib reference, which may not import numpy at all).
"""

try:
    import numpy as _np
except ImportError:  # numpy is optional everywhere
    _np = None


def count_kinds(times, kinds):
    total = 0
    for kind in kinds:
        total += 1 if kind else 0
    return total + len(times)
