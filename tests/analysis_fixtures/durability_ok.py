"""Quiet under durability-ordering: writes go through write_atomic (whose
writer callback receives a temp path), reads are unrestricted."""

import json

from repro.util.atomic import write_atomic


def save_state(path, state):
    def writer(temp_path):
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(state, handle)

    write_atomic(path, writer)


def load_state(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
