"""Quiet under durability-ordering via suppression comments: the inline
form and the comment-block-above form must both silence the rule."""

import json


def save_inline(path, state):
    with open(path, "w", encoding="utf-8") as handle:  # repro: allow(durability-ordering): fixture
        json.dump(state, handle)


def save_block(path, state):
    # repro: allow(durability-ordering): the justification of a deliberate
    # exception can span a whole comment block, and the marker still
    # covers the statement below it.
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(state, handle)
