"""Trips fault-site-registry once: a hook call with an unregistered site.

Checked with a ``FaultSiteChecker(known_sites=["fixture.known"])``
override.
"""


def hook(injector, key):
    injector.fire("fixture.unknown", key=key)
