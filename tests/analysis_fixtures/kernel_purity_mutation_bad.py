"""Trips kernel-purity once: a kernel mutates a column-view argument.

Loaded masquerading as a ``src/repro/core/kernels/`` module.
"""


def rewrite_times(times, kinds):
    times[0] = 0.0
    return kinds
