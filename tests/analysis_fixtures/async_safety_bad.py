"""Trips async-safety once: a synchronous sleep on the event loop.

Loaded masquerading as a ``src/repro/ingest/`` module.
"""

import time


async def poll_feed(feed):
    while not feed.ready():
        time.sleep(0.1)
    return feed.take()
