"""Tests for the Fit Score metrics, burst detection, history and inference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import ASPath
from repro.bgp.messages import Update
from repro.bgp.prefix import prefix_block
from repro.core.burst_detection import BurstDetector, BurstDetectorConfig, percentile_threshold
from repro.core.fit_score import FitScoreCalculator, FitScoreConfig
from repro.core.history import HistoryModel, TriggeringSchedule
from repro.core.inference import InferenceConfig, InferenceEngine

S6 = prefix_block("60.0.0.0/24", 100)   # origin AS 6, path 2 5 6
S7 = prefix_block("70.0.0.0/24", 100)   # origin AS 7, path 2 5 6 7
S8 = prefix_block("80.0.0.0/24", 20)    # origin AS 8, path 2 5 6 8
S2 = prefix_block("92.0.0.0/24", 10)    # origin AS 2, path 2
S5 = prefix_block("95.0.0.0/24", 10)    # origin AS 5, path 2 5


def fig1_session_rib():
    """The Adj-RIB-In of the paper's Fig. 1 router on its session with AS 2."""
    rib = {}
    for prefix in S6:
        rib[prefix] = ASPath([2, 5, 6])
    for prefix in S7:
        rib[prefix] = ASPath([2, 5, 6, 7])
    for prefix in S8:
        rib[prefix] = ASPath([2, 5, 6, 8])
    for prefix in S2:
        rib[prefix] = ASPath([2])
    for prefix in S5:
        rib[prefix] = ASPath([2, 5])
    return rib


class TestFitScore:
    def test_paper_example_end_of_burst(self):
        """Reproduce the Fig. 4 situation: failure of (5, 6).

        S6 and S8 are withdrawn, S7 is re-routed onto a path avoiding (5, 6);
        at the end of the burst link (5, 6) must have WS = PS = 1 and the
        highest fit score, as in the paper's example.
        """
        calc = FitScoreCalculator(fig1_session_rib(), local_as=1, peer_as=2)
        for prefix in S6 + S8:
            calc.record_withdrawal(prefix)
        for prefix in S7:
            calc.record_update(prefix, ASPath([2, 3, 7]))
        assert calc.withdrawal_share((5, 6)) == pytest.approx(1.0)
        assert calc.path_share((5, 6)) == pytest.approx(1.0)
        # (2, 5) still carries S5 -> PS < 1; (6, 8) has WS < 1.
        assert calc.path_share((2, 5)) < 1.0
        assert calc.withdrawal_share((6, 8)) < 1.0
        scores = calc.all_scores()
        assert scores[0].links == ((5, 6),)

    def test_soundness_single_failure(self):
        """Theorem 4.1: at the end of the stream the failed link has max FS."""
        rib = fig1_session_rib()
        calc = FitScoreCalculator(rib)
        # Failure of (6, 7): only S7 withdrawn.
        for prefix in S7:
            calc.record_withdrawal(prefix)
        scores = calc.all_scores()
        assert scores[0].links == ((6, 7),)
        assert scores[0].fit_score == pytest.approx(1.0)

    def test_withdrawal_share_dilution_by_noise(self):
        calc = FitScoreCalculator(fig1_session_rib())
        for prefix in S7:
            calc.record_withdrawal(prefix)
        before = calc.withdrawal_share((6, 7))
        for prefix in S2[:5]:  # unrelated withdrawals
            calc.record_withdrawal(prefix)
        after = calc.withdrawal_share((6, 7))
        assert after < before

    def test_duplicate_withdrawals_counted_once(self):
        calc = FitScoreCalculator(fig1_session_rib())
        calc.record_withdrawal(S6[0])
        calc.record_withdrawal(S6[0])
        assert calc.total_withdrawals == 1

    def test_update_clears_withdrawal(self):
        calc = FitScoreCalculator(fig1_session_rib())
        calc.record_withdrawal(S6[0])
        calc.record_update(S6[0], ASPath([2, 3, 6]))
        assert calc.total_withdrawals == 0
        assert calc.still_routed_count((3, 6)) == 1

    def test_score_set_caps_withdrawal_share(self):
        calc = FitScoreCalculator(fig1_session_rib())
        for prefix in S6:
            calc.record_withdrawal(prefix)
        aggregate = calc.score_set([(2, 5), (5, 6)])
        assert aggregate.withdrawal_share <= 1.0

    def test_prefixes_via_links(self):
        calc = FitScoreCalculator(fig1_session_rib())
        via = calc.prefixes_via_links([(6, 8)])
        assert via == frozenset(S8)

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            FitScoreConfig(ws_weight=0)

    @given(st.integers(1, 50))
    @settings(max_examples=20, deadline=None)
    def test_fit_score_bounded(self, withdrawn):
        calc = FitScoreCalculator(fig1_session_rib())
        for prefix in S6[:withdrawn]:
            calc.record_withdrawal(prefix)
        for score in calc.all_scores():
            assert 0.0 <= score.fit_score <= 1.0
            assert 0.0 <= score.withdrawal_share <= 1.0
            assert 0.0 <= score.path_share <= 1.0


class TestBurstDetector:
    def test_detects_start_and_end(self):
        detector = BurstDetector(BurstDetectorConfig(start_threshold=10, stop_threshold=1))
        event = None
        for index in range(12):
            event = detector.observe_withdrawals(index * 0.1, 1) or event
        assert detector.is_bursting
        assert event is not None and event.kind == "start"
        end = detector.observe_time(100.0)
        assert end is not None and end.kind == "end"
        assert not detector.is_bursting

    def test_no_burst_below_threshold(self):
        detector = BurstDetector(BurstDetectorConfig(start_threshold=100, stop_threshold=1))
        for index in range(50):
            detector.observe_withdrawals(index * 0.01, 1)
        assert not detector.is_bursting

    def test_window_slides(self):
        detector = BurstDetector(BurstDetectorConfig(window_seconds=1.0, start_threshold=5, stop_threshold=0))
        for index in range(4):
            detector.observe_withdrawals(index * 10.0, 4)
        assert not detector.is_bursting  # never 5 within one window

    def test_start_fires_at_exactly_start_threshold(self):
        detector = BurstDetector(BurstDetectorConfig(start_threshold=5, stop_threshold=1))
        for index in range(4):
            assert detector.observe_withdrawals(index * 0.1, 1) is None
        assert not detector.is_bursting
        event = detector.observe_withdrawals(0.4, 1)  # exactly 5 in window
        assert event is not None and event.kind == "start"
        assert event.withdrawals_in_window == 5
        assert detector.is_bursting

    def test_end_fires_at_exactly_stop_threshold(self):
        config = BurstDetectorConfig(
            window_seconds=10.0, start_threshold=5, stop_threshold=2
        )
        detector = BurstDetector(config)
        for index in range(5):
            detector.observe_withdrawals(float(index), 1)  # t = 0..4
        assert detector.is_bursting
        # Window retains t=2,3,4 -> 3 withdrawals: above stop, still bursting.
        assert detector.observe_time(11.5) is None
        assert detector.is_bursting
        # Window retains t=3,4 -> exactly stop_threshold: the burst ends.
        event = detector.observe_time(12.5)
        assert event is not None and event.kind == "end"
        assert event.withdrawals_in_window == 2
        assert not detector.is_bursting

    def test_percentile_threshold(self):
        counts = list(range(100))
        assert percentile_threshold(counts, 100.0) == 99
        assert percentile_threshold(counts, 0.0) == 0
        with pytest.raises(ValueError):
            percentile_threshold([], 50.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BurstDetectorConfig(start_threshold=5, stop_threshold=5)


class TestHistory:
    def test_schedule_acceptance_steps(self):
        schedule = TriggeringSchedule()
        assert schedule.first_trigger == 2500
        assert not schedule.accepts(2000, 100)          # below first trigger
        assert schedule.accepts(2500, 9999)
        assert not schedule.accepts(2500, 10000)
        assert schedule.accepts(5000, 19999)
        assert not schedule.accepts(5000, 20000)
        assert schedule.accepts(20000, 10 ** 7)          # unconditional
        assert schedule.next_trigger_after(2500) == 5000
        assert schedule.next_trigger_after(10000) == 20000
        assert schedule.next_trigger_after(20000) is None

    def test_permissive_schedule(self):
        schedule = TriggeringSchedule.permissive()
        assert schedule.accepts(2500, 10 ** 8)

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            TriggeringSchedule(steps=((5000, 10), (2500, 10)))

    def test_history_probability(self):
        history = HistoryModel([1000, 2000, 3000, 50000])
        assert history.probability_at_least(1) == 1.0
        assert history.probability_at_least(2500) == pytest.approx(0.5)
        assert history.is_plausible(2500)
        assert not history.is_plausible(10 ** 7)
        history.record_burst(10 ** 7)
        assert history.probability_at_least(10 ** 7) > 0

    def test_empty_history_is_permissive(self):
        assert HistoryModel().probability_at_least(10 ** 9) == 1.0

    def test_derive_schedule(self):
        history = HistoryModel([2000] * 50 + [30000] * 5)
        schedule = history.derive_schedule()
        assert schedule.first_trigger == 2500
        assert schedule.steps[0][1] >= 5000


def _burst_messages(prefixes, peer_as=2, start=100.0, rate=1000.0):
    return [
        Update.withdraw(start + index / rate, peer_as, prefix)
        for index, prefix in enumerate(prefixes)
    ]


class TestInferenceEngine:
    def _config(self, start_threshold=50, trigger=100, limit=10 ** 6):
        return InferenceConfig(
            detector=BurstDetectorConfig(start_threshold=start_threshold, stop_threshold=1),
            schedule=TriggeringSchedule(steps=((trigger, limit),), unconditional_after=trigger),
        )

    def test_inference_fires_and_localises(self):
        rib = fig1_session_rib()
        engine = InferenceEngine(rib, config=self._config())
        results = engine.process_stream(_burst_messages(S7))
        assert results, "an inference should have been accepted"
        result = results[0]
        assert (6, 7) in result.inferred_links
        assert result.prediction.predicted_prefixes >= frozenset(S7[:50])

    def test_no_inference_without_burst(self):
        rib = fig1_session_rib()
        engine = InferenceEngine(rib, config=self._config(start_threshold=10 ** 6))
        results = engine.process_stream(_burst_messages(S7))
        assert results == []

    def test_detection_window_withdrawals_are_replayed(self):
        rib = fig1_session_rib()
        engine = InferenceEngine(rib, config=self._config(start_threshold=60, trigger=80))
        engine.process_stream(_burst_messages(S6))
        # The burst starts after 60 withdrawals but the counter includes them.
        assert engine.results
        assert engine.results[0].withdrawals_seen >= 80

    def test_schedule_delays_large_predictions(self):
        rib = fig1_session_rib()
        config = InferenceConfig(
            detector=BurstDetectorConfig(start_threshold=20, stop_threshold=1),
            schedule=TriggeringSchedule(
                steps=((50, 60), (150, 1000)), unconditional_after=200
            ),
        )
        engine = InferenceEngine(rib, config=config)
        engine.process_stream(_burst_messages(S6 + S7 + S8))
        accepted = engine.accepted_inference
        assert accepted is not None
        # The first try at 50 withdrawals predicts >200 prefixes (all of S6,
        # S7, S8 share links) so acceptance must wait for the next trigger.
        assert accepted.withdrawals_seen >= 120

    def test_force_inference_at_any_point(self):
        rib = fig1_session_rib()
        engine = InferenceEngine(rib, config=self._config(start_threshold=10, trigger=10 ** 6))
        messages = _burst_messages(S6 + S8)
        engine.process_stream(messages[:40])
        result = engine.force_inference(timestamp=200.0)
        assert result is not None
        links = set(result.inferred_links)
        assert (5, 6) in links or (2, 5) in links

    def test_listener_called_on_acceptance(self):
        rib = fig1_session_rib()
        engine = InferenceEngine(rib, config=self._config())
        seen = []
        engine.add_listener(lambda result: seen.append(result))
        engine.process_stream(_burst_messages(S7))
        assert len(seen) == 1

    def test_updates_reduce_prediction(self):
        """Path updates during the burst steer the inference away from shared links."""
        rib = fig1_session_rib()
        engine = InferenceEngine(rib, config=self._config(start_threshold=50, trigger=100))
        messages = []
        for index, prefix in enumerate(S6 + S8):
            messages.append(Update.withdraw(100 + index * 0.001, 2, prefix))
        # Interleave updates of S7 onto a path avoiding (5, 6).
        from repro.bgp.attributes import PathAttributes

        for index, prefix in enumerate(S7):
            messages.append(
                Update.announce(
                    100 + index * 0.001,
                    2,
                    prefix,
                    PathAttributes(as_path=ASPath([2, 3, 7]), next_hop=2),
                )
            )
        messages.sort(key=lambda m: m.timestamp)
        results = engine.process_stream(messages)
        assert results
        predicted = results[0].prediction.predicted_prefixes
        # S2's prefixes do not cross the inferred region and must not be rerouted.
        assert not (predicted & set(S2))

    def test_multi_link_aggregation_on_node_failure(self):
        """A failure of AS 6 (links (6,7) and (6,8)) is inferred as a set."""
        rib = {}
        for prefix in S7:
            rib[prefix] = ASPath([2, 5, 6, 7])
        for prefix in S8:
            rib[prefix] = ASPath([2, 5, 6, 8])
        # Other prefixes keep (5, 6) alive so it cannot be the failed link.
        for prefix in S6:
            rib[prefix] = ASPath([2, 5, 6])
        engine = InferenceEngine(rib, config=self._config(start_threshold=30, trigger=110))
        engine.process_stream(_burst_messages(S7 + S8))
        result = engine.accepted_inference
        assert result is not None
        links = set(result.inferred_links)
        assert (6, 7) in links and (6, 8) in links
        assert 6 in result.shared_endpoints
