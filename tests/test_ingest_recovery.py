"""Crash-mid-roll recovery: the ``kill -9`` matrix.

Each scenario launches the daemon as a *subprocess*
(``tests/_ingest_runner.py``) with a seeded kill fault placed at one of
the ingest durability sites — mid-append, or inside each of the three
roll phases the crash windows of
``src/repro/ingest/segments.py`` document — lets it die hard
(``os._exit(3)``, no finally blocks, the moral equivalent of ``kill -9``),
and then asserts the recovery contract *twice*:

1. immediately after the crash, :func:`repro.ingest.recover_feed` +
   :func:`repro.ingest.open_tail` reconstruct **exactly** the offline
   ingest of the feed's first ``next_offset`` lines — message-for-message,
   no loss, no duplicates — and never fewer rows than the run's last
   acknowledged (post-fsync) count;
2. a clean restart resumes from the checkpoint and completes: the final
   dataset equals the offline ingest of the whole feed, and every sealed
   segment's CRC and byte count verify against the manifest.

The fault placements are seeded (``after=K`` occurrence offsets), so each
run of the matrix kills the daemon at the same deterministic points.
"""

import io
import os
import subprocess
import sys

import pytest

import _ingest_runner as runner

from repro.ingest import Manifest, SyntheticFeed, iter_feed_windows, open_tail
from repro.traces.mrt import TraceReader
from repro.traces.validation import ValidationReport

pytestmark = pytest.mark.ingest

_TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
_RUNNER = os.path.join(_TESTS_DIR, "_ingest_runner.py")
_SRC = os.path.join(_TESTS_DIR, "..", "src")


def _feed_lines(peer_as):
    return [line for _, line in SyntheticFeed(runner.CORPUS, peer_as).connect()]


def _offline_messages(lines):
    text = "".join(line + "\n" for line in lines)
    trace = TraceReader(io.StringIO(text)).read_columnar(
        report=ValidationReport(lenient=True)
    )
    return trace.to_messages()


@pytest.fixture(scope="module")
def corpus():
    """name -> (lines, offline messages) for every feed of the runner corpus."""
    expected = {}
    for peer_as in runner.corpus_peers():
        lines = _feed_lines(peer_as)
        expected[f"peer-{peer_as}"] = (lines, _offline_messages(lines))
    return expected


def _run_daemon(root, faults_text=None, seed=0, timeout=60):
    env = os.environ.copy()
    env["PYTHONPATH"] = _SRC
    env["REPRO_TRACE_CACHE"] = "off"
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULT_SEED", None)
    if faults_text is not None:
        env["REPRO_FAULTS"] = faults_text
        env["REPRO_FAULT_SEED"] = str(seed)
    completed = subprocess.run(
        [sys.executable, _RUNNER, root],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    acks = {}
    done = None
    for line in completed.stdout.splitlines():
        parts = line.split()
        if parts[:1] == ["ACK"] and len(parts) == 4:
            acks[parts[1]] = (int(parts[2]), int(parts[3]))
        elif parts[:1] == ["DONE"] and len(parts) == 2:
            done = int(parts[1])
    return completed, acks, done


def _recovered_state(root, name):
    """(rows recovered, resume offset, recovered messages) after a crash.

    Read-only reconstruction: sealed windows off their ``.cols`` stores
    plus the open tail replayed from the append log's valid frames — the
    exact state a restarted daemon resumes from.
    """
    manifest = Manifest.load(root)
    state = manifest.feed_state(name)
    messages = []
    for window in iter_feed_windows(root, name, manifest):
        messages.extend(window.to_messages())
    next_offset = state["next_offset"]
    payloads, _ = _scan_open_log(root, name, state)
    for payload in payloads:
        next_offset = payload["offset"]
    return len(messages), next_offset, messages


def _scan_open_log(root, name, state):
    from repro.ingest.segments import _log_name
    from repro.traces.columnar_store import SegmentAppendLog

    return SegmentAppendLog.scan(
        os.path.join(root, name, _log_name(state["open_seq"]))
    )


_KILL_MATRIX = [
    pytest.param("kill@segment.append;after=2", id="mid-append-early"),
    pytest.param("kill@segment.append;after=9", id="mid-append-late"),
    pytest.param("kill@segment.roll;match=*:start", id="roll-before-seal"),
    pytest.param("kill@segment.roll;match=*:sealed", id="roll-before-manifest"),
    pytest.param("kill@segment.roll;match=*:manifest", id="roll-before-retire"),
    pytest.param("kill@feed.read;after=150", id="mid-read"),
]


@pytest.mark.parametrize("faults_text", _KILL_MATRIX)
def test_kill_then_restart_recovers_exactly(tmp_path, corpus, faults_text):
    root = str(tmp_path)

    crashed, acks, done = _run_daemon(root, faults_text=faults_text, seed=7)
    assert crashed.returncode == 3, (
        f"expected the injected kill to fire (stdout={crashed.stdout!r}, "
        f"stderr={crashed.stderr!r})"
    )
    assert done is None

    # -- contract 1: post-crash recovery is exact ----------------------------
    for name, (lines, offline) in corpus.items():
        rows, next_offset, recovered = _recovered_state(root, name)
        acked_rows, acked_offset = acks.get(name, (0, 0))
        # Durability: everything acknowledged before the kill survived it.
        assert rows >= acked_rows
        assert next_offset >= acked_offset
        # Exactness: the recovered rows are precisely the offline ingest of
        # the first next_offset feed lines — no loss, no duplicates.
        assert recovered == _offline_messages(lines[:next_offset])

    # -- contract 2: a clean restart completes from the checkpoint -----------
    finished, _, done = _run_daemon(root)
    assert finished.returncode == 0, finished.stderr
    assert done == sum(len(offline) for _, offline in corpus.values())

    manifest = Manifest.load(root)
    for name, (lines, offline) in corpus.items():
        final = []
        for window in iter_feed_windows(root, name, manifest):
            final.extend(window.to_messages())
        assert final == offline
        state = manifest.feed_state(name)
        assert state["complete"] is True
        assert state["next_offset"] == len(lines)
        assert open_tail(root, name, manifest).message_count == 0
    # Every sealed segment's bytes and CRC verify against the manifest.
    assert manifest.verify() >= 2


def test_double_kill_then_restart(tmp_path, corpus):
    """Two successive crashes at different sites still recover exactly."""
    root = str(tmp_path)
    first, _, _ = _run_daemon(root, faults_text="kill@segment.append;after=4", seed=3)
    assert first.returncode == 3
    second, _, _ = _run_daemon(
        root, faults_text="kill@segment.roll;match=*:sealed", seed=3
    )
    # The second kill may not fire if the remaining work rolls fewer times;
    # either way the final clean run must converge to the offline dataset.
    assert second.returncode in (0, 3)

    finished, _, done = _run_daemon(root)
    assert finished.returncode == 0, finished.stderr
    assert done == sum(len(offline) for _, offline in corpus.values())
    manifest = Manifest.load(root)
    for name, (_, offline) in corpus.items():
        final = []
        for window in iter_feed_windows(root, name, manifest):
            final.extend(window.to_messages())
        assert final == offline
    manifest.verify()
