"""Streaming ingestion daemon: durability, supervision and live parity.

The tentpole claims asserted here:

* a full daemon run over a synthetic corpus ingests exactly the rows an
  offline :class:`~repro.traces.mrt.TraceReader` pass over the same lines
  produces, across multiple sealed segments, with the manifest's CRCs
  verifying against the files on disk;
* windowed live inference over the ingested segments
  (:func:`repro.ingest.replay_feed`) is **byte-identical** — same
  ``signature()`` pickle — to offline ``replay_stream`` over the whole
  stream, including inference events on a bursty corpus;
* the supervisor self-heals: hung readers are cancelled by the watchdog
  and restarted at the exact resume offset, injected IO errors on read
  and append retry under the shared backoff, corrupt lines are
  counted-and-skipped, and a permanently failed feed either aborts
  (``strict=True``) or degrades gracefully with the casualty recorded in
  the manifest (``strict=False``).

Process-death recovery (the ``kill -9`` matrix) lives in
``tests/test_ingest_recovery.py``.
"""

import io
import os
import pickle

import pytest

from repro.core.history import TriggeringSchedule
from repro.core.inference import InferenceConfig
from repro.core.swifted_router import SwiftConfig
from repro.experiments.month_replay import replay_stream
from repro.ingest import (
    IngestConfig,
    IngestDaemon,
    IngestError,
    IngestManifestError,
    Manifest,
    SegmentWriter,
    SyntheticFeed,
    open_tail,
    replay_feed,
)
from repro.testing import faults
from repro.traces.mrt import TraceReader
from repro.traces.synthetic import SyntheticTraceConfig, SyntheticTraceGenerator
from repro.traces.validation import ValidationReport
from repro.util.retry import RetryPolicy

pytestmark = pytest.mark.ingest

#: Tiny corpus for daemon mechanics: two sessions, a few hundred rows.
_TINY = SyntheticTraceConfig(
    peer_count=2,
    duration_days=0.2,
    min_table_size=120,
    max_table_size=260,
    burst_size_minimum=60,
    noise_rate_per_second=0.02,
    seed=11,
)

#: Bursty corpus for the live/offline inference parity test — the fleet
#: replay corpus, whose first session (peer 2900) is known to produce
#: reroute events under the lowered triggering schedule below.
_BURSTY = SyntheticTraceConfig(
    peer_count=4,
    duration_days=4.0,
    min_table_size=1500,
    max_table_size=4000,
    burst_size_minimum=400,
    noise_rate_per_second=0.01,
    seed=17,
)

_SWIFT = SwiftConfig(
    inference=InferenceConfig(
        schedule=TriggeringSchedule(steps=((300, 100000),), unconditional_after=500)
    )
)

#: Retry policy with test-friendly backoff (sub-millisecond sleeps).
_FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.005, backoff_max=0.02)


def _peers(config):
    return [peer.peer_as for peer in SyntheticTraceGenerator(config).stream().peers]


def _feed_lines(config, peer_as):
    """The exact line sequence a SyntheticFeed serves (offline comparator)."""
    return [line for _, line in SyntheticFeed(config, peer_as).connect()]


def _offline_trace(lines):
    """One offline TraceReader pass over the concatenated feed lines."""
    text = "".join(line + "\n" for line in lines)
    return TraceReader(io.StringIO(text)).read_columnar(
        report=ValidationReport(lenient=True)
    )


def _armed(plan_text, seed=0):
    """Install an in-process fault injector; caller must disarm."""
    faults.install_injector(
        faults.FaultInjector(faults.FaultPlan.from_text(plan_text, seed=seed))
    )


@pytest.fixture
def disarm():
    yield
    faults.install_injector(None)


# -- happy path ---------------------------------------------------------------


def test_daemon_ingests_corpus_across_segments(tmp_path):
    root = str(tmp_path)
    peers = _peers(_TINY)
    feeds = [SyntheticFeed(_TINY, peer_as) for peer_as in peers]
    result = IngestDaemon(
        root, feeds, IngestConfig(flush_rows=16, segment_rows=100)
    ).run()

    manifest = Manifest.load(root)
    total_expected = 0
    for feed in feeds:
        lines = _feed_lines(_TINY, feed.peer_as)
        offline = _offline_trace(lines)
        status = result.feeds[feed.name]
        assert status.complete and status.failed is None
        assert status.rows_acked == offline.message_count
        assert status.next_offset == len(lines)
        # Small segment_rows forces several sealed segments per feed.
        assert status.segments_sealed >= 2
        state = manifest.feed_state(feed.name)
        assert state["complete"] is True
        assert manifest.sealed_rows(feed.name) == offline.message_count
        # EOF seals the tail: nothing left in an open log.
        assert open_tail(root, feed.name, manifest).message_count == 0
        total_expected += offline.message_count
    assert result.total_rows == total_expected
    assert result.failed_feeds == []
    # Every sealed segment's bytes and CRC check out against the manifest.
    assert manifest.verify() == sum(
        status.segments_sealed for status in result.feeds.values()
    )


def test_daemon_run_is_idempotent_when_complete(tmp_path):
    root = str(tmp_path)
    feeds = [SyntheticFeed(_TINY, _peers(_TINY)[0])]
    first = IngestDaemon(root, feeds, IngestConfig(segment_rows=100)).run()
    again = IngestDaemon(root, feeds, IngestConfig(segment_rows=100)).run()
    # The resume offset is at EOF, so the second run ingests nothing new.
    assert again.total_rows == first.total_rows
    status = again.feeds[feeds[0].name]
    assert status.segments_sealed == first.feeds[feeds[0].name].segments_sealed


# -- live / offline parity ----------------------------------------------------


def test_live_windows_match_offline_replay_byte_identically(tmp_path):
    root = str(tmp_path)
    peer_as = _peers(_BURSTY)[0]
    feed = SyntheticFeed(_BURSTY, peer_as)
    result = IngestDaemon(
        root, [feed], IngestConfig(flush_rows=256, segment_rows=4000)
    ).run()
    status = result.feeds[feed.name]
    assert status.segments_sealed >= 2  # the replay is genuinely windowed

    lines = _feed_lines(_BURSTY, peer_as)
    stream = _offline_trace(lines)
    assert status.rows_acked == stream.message_count

    rib = feed.rib()
    offline = replay_stream(
        stream, rib, peer_as, swift_config=_SWIFT, collect_events=True
    )
    live = replay_feed(
        root, feed.name, rib, peer_as, swift_config=_SWIFT, collect_events=True
    )
    # The corpus must actually exercise inference for parity to mean much.
    assert offline.reroutes > 0
    assert pickle.dumps(live.signature()) == pickle.dumps(offline.signature())


def test_open_tail_participates_in_windowed_replay(tmp_path):
    root = str(tmp_path)
    peer_as = _peers(_TINY)[0]
    lines = _feed_lines(_TINY, peer_as)
    manifest = Manifest.load(root)
    writer = SegmentWriter(root, "tail-feed", manifest)
    # Seal one segment, then leave rows in the open log (no roll, no EOF).
    split = len(lines) // 2
    for offset, line in enumerate(lines[:split]):
        writer.add_line(offset, line)
    writer.flush()
    writer.roll()
    for offset in range(split, len(lines)):
        writer.add_line(offset, lines[offset])
    writer.flush()
    manifest.save()
    writer.close()

    tail = open_tail(root, "tail-feed", manifest)
    assert tail.message_count == writer.open_rows
    stream = _offline_trace(lines)
    rib = SyntheticFeed(_TINY, peer_as).rib()
    offline = replay_stream(stream, rib, peer_as, collect_events=True)
    live = replay_feed(root, "tail-feed", rib, peer_as, collect_events=True)
    assert pickle.dumps(live.signature()) == pickle.dumps(offline.signature())


# -- supervision and self-healing ---------------------------------------------


def test_watchdog_restarts_hung_reader_exactly_once_delivery(tmp_path, disarm):
    root = str(tmp_path)
    peer_as = _peers(_TINY)[0]
    feed = SyntheticFeed(_TINY, peer_as)
    # The reader hangs mid-feed; the hang outlives stall_timeout, the
    # watchdog cancels it, and the restarted reader resumes at the exact
    # offset — no loss, no duplicate.
    _armed("hang@feed.read;after=40;hang=30")
    result = IngestDaemon(
        root,
        [feed],
        IngestConfig(stall_timeout=0.4, retry=_FAST_RETRY),
    ).run()
    status = result.feeds[feed.name]
    assert status.restarts >= 1
    offline = _offline_trace(_feed_lines(_TINY, peer_as))
    assert status.rows_acked == offline.message_count
    assert status.complete


def test_reader_io_errors_self_heal(tmp_path, disarm):
    root = str(tmp_path)
    peer_as = _peers(_TINY)[0]
    feed = SyntheticFeed(_TINY, peer_as)
    _armed("io_error@feed.read;times=2;after=10")
    result = IngestDaemon(
        root, [feed], IngestConfig(retry=_FAST_RETRY, segment_rows=100)
    ).run()
    status = result.feeds[feed.name]
    assert status.restarts >= 1
    offline = _offline_trace(_feed_lines(_TINY, peer_as))
    assert status.rows_acked == offline.message_count
    assert status.complete
    assert Manifest.load(root).verify() == status.segments_sealed


def test_append_io_errors_retry_under_backoff(tmp_path, disarm):
    root = str(tmp_path)
    peer_as = _peers(_TINY)[0]
    feed = SyntheticFeed(_TINY, peer_as)
    # Two consecutive flush failures stay under max_attempts=3; the flush
    # retries against a log truncated back to its durable end.
    _armed("io_error@segment.append;times=2;after=3")
    result = IngestDaemon(
        root, [feed], IngestConfig(retry=_FAST_RETRY, segment_rows=100)
    ).run()
    status = result.feeds[feed.name]
    offline = _offline_trace(_feed_lines(_TINY, peer_as))
    assert status.rows_acked == offline.message_count
    assert status.complete


def test_corrupt_lines_are_counted_and_skipped(tmp_path, disarm):
    root = str(tmp_path)
    peer_as = _peers(_TINY)[0]
    feed = SyntheticFeed(_TINY, peer_as)
    _armed("corrupt@feed.read;times=3;after=5")
    result = IngestDaemon(root, [feed], IngestConfig(segment_rows=100)).run()
    status = result.feeds[feed.name]
    offline = _offline_trace(_feed_lines(_TINY, peer_as))
    assert status.lines_skipped == 3
    assert status.rows_acked == offline.message_count - 3
    assert status.complete


def test_strict_failure_aborts_the_run(tmp_path, disarm):
    root = str(tmp_path)
    feeds = [SyntheticFeed(_TINY, peer_as) for peer_as in _peers(_TINY)]
    _armed(f"io_error@feed.connect;times=99;match={feeds[0].name}")
    with pytest.raises(IngestError, match=feeds[0].name):
        IngestDaemon(root, feeds, IngestConfig(retry=_FAST_RETRY)).run()


def test_lenient_mode_records_the_casualty_and_keeps_survivors(tmp_path, disarm):
    root = str(tmp_path)
    feeds = [SyntheticFeed(_TINY, peer_as) for peer_as in _peers(_TINY)]
    casualty, survivor = feeds[0], feeds[1]
    _armed(f"io_error@feed.connect;times=99;match={casualty.name}")
    result = IngestDaemon(
        root, feeds, IngestConfig(retry=_FAST_RETRY, strict=False, segment_rows=100)
    ).run()
    assert result.failed_feeds == [casualty.name]
    assert result.feeds[casualty.name].failed is not None
    assert not result.feeds[casualty.name].complete
    manifest = Manifest.load(root)
    assert manifest.feed_state(casualty.name)["failed"] is not None
    # The survivor ingested its whole feed regardless.
    offline = _offline_trace(_feed_lines(_TINY, survivor.peer_as))
    assert result.feeds[survivor.name].rows_acked == offline.message_count
    assert result.feeds[survivor.name].complete


# -- manifest integrity -------------------------------------------------------


def test_manifest_verify_detects_segment_corruption(tmp_path):
    root = str(tmp_path)
    feed = SyntheticFeed(_TINY, _peers(_TINY)[0])
    IngestDaemon(root, [feed], IngestConfig(segment_rows=100)).run()
    manifest = Manifest.load(root)
    entry = manifest.feed_state(feed.name)["sealed"][0]
    path = os.path.join(root, feed.name, entry["file"])
    faults.corrupt_file(path, seed=5)
    with pytest.raises(IngestManifestError, match=entry["file"]):
        manifest.verify()


def test_duplicate_feed_names_are_rejected(tmp_path):
    peer_as = _peers(_TINY)[0]
    feeds = [SyntheticFeed(_TINY, peer_as), SyntheticFeed(_TINY, peer_as)]
    with pytest.raises(ValueError, match="duplicate"):
        IngestDaemon(str(tmp_path), feeds)
