"""Burst-boundary regression tests and reference-parity for the hot path.

Covers the two attribution bugs fixed alongside the link->prefix index
rework:

* a withdrawal arriving after a long quiet gap ("end" event from the
  detector) must end the stale burst and be attributed to quiet time, not
  recorded into the old burst's calculator;
* stale quiet-time withdrawals must age out on *every* message timestamp
  (including announcement-only traffic) so a later burst neither replays
  them nor backdates its start time.

Plus the parity guarantee of the index rework — the engine emits identical
``InferenceResult`` sequences whether it scores with the incremental
:class:`~repro.core.fit_score.FitScoreCalculator` overlay or with the
reference full-scan implementation — and of the column-native ingestion
path: ``process_columnar_run`` must leave the engine in *exactly* the state
per-message replay leaves it, including the quiet-time withdrawal buffer
that ``force_inference`` / ``flush_quiet_state`` act on when called between
columnar chunks.
"""

import pytest

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import Update
from repro.bgp.prefix import prefix_block
from repro.core.burst_detection import BurstDetectorConfig
from repro.core.fit_score import FitScoreConfig, LinkPrefixIndex
from repro.core.history import HistoryModel, TriggeringSchedule
from repro.core.inference import InferenceConfig, InferenceEngine
from repro.core.reference import ReferenceFitScoreCalculator
from repro.traces.columnar import ColumnarRun, ColumnarTrace

S6 = prefix_block("60.0.0.0/24", 100)   # origin AS 6, path 2 5 6
S7 = prefix_block("70.0.0.0/24", 100)   # origin AS 7, path 2 5 6 7
S8 = prefix_block("80.0.0.0/24", 20)    # origin AS 8, path 2 5 6 8
S5 = prefix_block("95.0.0.0/24", 10)    # origin AS 5, path 2 5


def session_rib():
    rib = {}
    for prefix in S6:
        rib[prefix] = ASPath([2, 5, 6])
    for prefix in S7:
        rib[prefix] = ASPath([2, 5, 6, 7])
    for prefix in S8:
        rib[prefix] = ASPath([2, 5, 6, 8])
    for prefix in S5:
        rib[prefix] = ASPath([2, 5])
    return rib


def _config(start_threshold=10, stop_threshold=1, trigger=10 ** 6, window=10.0):
    return InferenceConfig(
        detector=BurstDetectorConfig(
            window_seconds=window,
            start_threshold=start_threshold,
            stop_threshold=stop_threshold,
        ),
        schedule=TriggeringSchedule(
            steps=((trigger, 10 ** 7),), unconditional_after=trigger
        ),
    )


def _withdrawals(prefixes, start, rate=1000.0, peer_as=2):
    return [
        Update.withdraw(start + index / rate, peer_as, prefix)
        for index, prefix in enumerate(prefixes)
    ]


class TestWithdrawalAfterQuietGap:
    """Regression: an "end" event from ``observe_withdrawals`` is honoured."""

    def test_late_withdrawal_ends_stale_burst(self):
        history = HistoryModel()
        engine = InferenceEngine(session_rib(), config=_config(), history=history)
        engine.process_batch(_withdrawals(S6[:20], start=100.0))
        assert engine.detector.is_bursting
        assert engine.withdrawals_in_current_burst == 20

        # One withdrawal after a gap far exceeding the detection window: the
        # detector returns an "end" event on this very message.
        engine.process_message(Update.withdraw(200.0, 2, S7[0]))
        assert not engine.detector.is_bursting
        assert engine.withdrawals_in_current_burst == 0
        # The stale burst's size excludes the late withdrawal.
        assert history.sizes == [20]

    def test_late_withdrawal_seeds_the_next_burst(self):
        engine = InferenceEngine(session_rib(), config=_config())
        engine.process_batch(_withdrawals(S6[:20], start=100.0))

        # Gap, then a fresh flood: the quiet-gap withdrawal belongs to the
        # *new* burst (it is replayed from the quiet-time buffer).
        engine.process_message(Update.withdraw(200.0, 2, S7[0]))
        engine.process_batch(_withdrawals(S7[1:10], start=200.05))
        assert engine.detector.is_bursting
        assert engine.withdrawals_in_current_burst == 10
        result = engine.force_inference(timestamp=200.1)
        assert result is not None
        assert result.burst_start == pytest.approx(200.0)
        assert result.withdrawals_seen == 10


class TestStaleBufferedWithdrawals:
    """Regression: quiet-time withdrawals age out on every message."""

    def test_announcement_traffic_expires_the_buffer(self):
        engine = InferenceEngine(session_rib(), config=_config())
        # Five quiet withdrawals, far below the start threshold.
        for message in _withdrawals(S6[:5], start=0.0):
            engine.process_message(message)
        assert all(prefix in engine.current_rib() for prefix in S6[:5])

        # Announcement-only traffic 50 s later must expire the buffer (the
        # seed implementation only aged it on quiet *withdrawal* messages).
        engine.process_message(
            Update.announce(
                50.0, 2, S5[0], PathAttributes(as_path=ASPath([2, 5]), next_hop=2)
            )
        )
        assert all(prefix not in engine.current_rib() for prefix in S6[:5])

    def test_stale_withdrawals_not_replayed_into_new_burst(self):
        engine = InferenceEngine(session_rib(), config=_config())
        for message in _withdrawals(S6[:5], start=0.0):
            engine.process_message(message)
        engine.process_message(
            Update.announce(
                50.0, 2, S5[0], PathAttributes(as_path=ASPath([2, 5]), next_hop=2)
            )
        )

        # A real burst at t=100: its start must not be backdated to t=0 and
        # the stale withdrawals must not inflate its counter.
        engine.process_batch(_withdrawals(S7[:10], start=100.0))
        assert engine.detector.is_bursting
        assert engine.withdrawals_in_current_burst == 10
        result = engine.force_inference(timestamp=100.1)
        assert result is not None
        assert result.burst_start == pytest.approx(100.0)
        assert result.withdrawals_seen == 10
        assert result.inference_delay < 1.0


class TestReferenceParity:
    """The index-based engine matches the reference full-scan engine."""

    @staticmethod
    def _parity_stream():
        """A synthetic burst exercising every hot-path code path.

        Quiet churn (buffered withdrawals, some expiring), a first burst with
        interleaved re-announcements (implicit withdrawals, withdrawal
        clearing), a quiet gap ending it, and a second burst that triggers
        and gets accepted — producing both rejected and accepted
        ``InferenceResult`` entries.
        """
        messages = []
        # Quiet churn: a few withdrawals that will expire, and one
        # re-announcement.
        messages += _withdrawals(S5[:3], start=0.0, rate=10.0)
        messages.append(
            Update.announce(
                20.0, 2, S6[0], PathAttributes(as_path=ASPath([2, 3, 6]), next_hop=2)
            )
        )
        # First burst: withdraw S6, re-route S7 away from (5, 6) mid-burst,
        # re-announce one withdrawn prefix (clears its withdrawal).
        messages += _withdrawals(S6, start=100.0)
        messages.append(
            Update.announce(
                100.05, 2, S7[0], PathAttributes(as_path=ASPath([2, 3, 7]), next_hop=2)
            )
        )
        messages.append(
            Update.announce(
                100.08, 2, S6[10], PathAttributes(as_path=ASPath([2, 3, 6]), next_hop=2)
            )
        )
        # Quiet gap ends the burst.
        messages.append(
            Update.announce(
                180.0, 2, S5[5], PathAttributes(as_path=ASPath([2, 5]), next_hop=2)
            )
        )
        # Second burst: withdraw S7 and S8 (failure around AS 6's far side).
        messages += _withdrawals(S7 + S8, start=300.0)
        messages.sort(key=lambda m: m.timestamp)
        return messages

    def test_identical_inference_result_sequences(self):
        config = InferenceConfig(
            detector=BurstDetectorConfig(
                window_seconds=10.0, start_threshold=30, stop_threshold=1
            ),
            schedule=TriggeringSchedule(
                steps=((60, 90), (110, 10 ** 6)), unconditional_after=150
            ),
        )
        rib = session_rib()
        messages = self._parity_stream()

        incremental = InferenceEngine(rib, config=config, local_as=1, peer_as=2)
        reference = InferenceEngine(
            rib,
            config=config,
            local_as=1,
            peer_as=2,
            calculator_factory=lambda current_rib: ReferenceFitScoreCalculator(
                current_rib, config=config.fit_score, local_as=1, peer_as=2
            ),
        )

        accepted_incremental = incremental.process_stream(messages)
        accepted_reference = reference.process_stream(messages)

        # Every emitted result — accepted *and* rejected — must be identical.
        assert incremental.results == reference.results
        assert accepted_incremental == accepted_reference
        assert len(incremental.results) >= 2, "stream must exercise several triggers"
        assert any(r.accepted for r in incremental.results)
        assert any(not r.accepted for r in incremental.results)
        assert incremental.current_rib() == reference.current_rib()

    def test_columnar_run_parity_with_reference_calculator(self):
        """The column-native path matches per-message replay for *both*
        calculator implementations (``record_run`` on each), across run
        splits that land mid-burst."""
        config = InferenceConfig(
            detector=BurstDetectorConfig(
                window_seconds=10.0, start_threshold=30, stop_threshold=1
            ),
            schedule=TriggeringSchedule(
                steps=((60, 90), (110, 10 ** 6)), unconditional_after=150
            ),
        )
        rib = session_rib()
        messages = self._parity_stream()
        trace = ColumnarTrace.from_messages(messages)

        baseline = InferenceEngine(rib, config=config, local_as=1, peer_as=2)
        baseline_accepted = baseline.process_batch(messages)

        for max_run in (None, 7):
            columnar = InferenceEngine(rib, config=config, local_as=1, peer_as=2)
            reference = InferenceEngine(
                rib,
                config=config,
                local_as=1,
                peer_as=2,
                calculator_factory=lambda current_rib: ReferenceFitScoreCalculator(
                    current_rib, config=config.fit_score, local_as=1, peer_as=2
                ),
            )
            columnar_accepted = []
            reference_accepted = []
            for run in trace.iter_batches(max_run=max_run):
                columnar_accepted.extend(columnar.process_columnar_run(run))
                reference_accepted.extend(reference.process_columnar_run(run))
            assert columnar.results == baseline.results
            assert reference.results == baseline.results
            assert columnar_accepted == baseline_accepted
            assert reference_accepted == baseline_accepted
            assert columnar.current_rib() == baseline.current_rib()
            assert reference.current_rib() == baseline.current_rib()
            assert columnar.detector.events == baseline.detector.events

    def test_calculator_parity_on_shared_queries(self):
        """Spot-check calculator-level queries against the reference."""
        rib = session_rib()
        index = LinkPrefixIndex(rib, local_as=1, peer_as=2)
        from repro.core.fit_score import FitScoreCalculator

        incremental = FitScoreCalculator.from_index(index, config=FitScoreConfig())
        reference = ReferenceFitScoreCalculator(
            rib, config=FitScoreConfig(), local_as=1, peer_as=2
        )
        incremental.record_withdrawals(S6 + S8[:5])
        reference.record_withdrawals(S6 + S8[:5])
        incremental.record_update(S7[0], ASPath([2, 3, 7]))
        reference.record_update(S7[0], ASPath([2, 3, 7]))
        incremental.record_update(S6[0], ASPath([2, 3, 6]))
        reference.record_update(S6[0], ASPath([2, 3, 6]))

        assert incremental.total_withdrawals == reference.total_withdrawals
        assert incremental.withdrawn_prefixes == reference.withdrawn_prefixes
        assert incremental.all_scores() == reference.all_scores()
        assert incremental.tracked_links() == reference.tracked_links()
        for links in ([(5, 6)], [(2, 5), (5, 6)], [(6, 8), (6, 7)]):
            assert incremental.prefixes_via_links(links) == reference.prefixes_via_links(
                links
            )
            assert incremental.score_set(links) == reference.score_set(links)


def _single_peer_runs(trace, split_indices):
    """Cut a single-peer columnar trace into runs at explicit row indices."""
    peer = trace.msg_peer[0]
    bounds = [0] + sorted(split_indices) + [len(trace)]
    return [
        ColumnarRun(trace, lo, hi, peer)
        for lo, hi in zip(bounds, bounds[1:])
        if hi > lo
    ]


class TestMidRunControlCalls:
    """``force_inference`` / ``flush_quiet_state`` between columnar chunks.

    Both entry points read engine state the stream side maintains — the
    burst calculator and the quiet-time withdrawal buffer respectively — so
    a columnar-fed engine must expose *exactly* the state a per-message-fed
    engine exposes at the same stream position, or replay drivers that
    re-provision (flush) or probe (force) between chunks diverge.
    """

    def _engines(self):
        return (
            InferenceEngine(session_rib(), config=_config()),
            InferenceEngine(session_rib(), config=_config()),
        )

    def test_flush_quiet_state_matches_per_message_path(self):
        """Announcement-only columnar traffic must age the buffer before a
        mid-stream ``flush_quiet_state`` folds it into the RIB view."""
        messages = _withdrawals(S6[:5], start=0.0)
        # Announcement-only traffic 50 s later: entries must age out on the
        # columnar path too (the seed bug aged them only on quiet
        # withdrawals), plus two fresh withdrawals that must survive.
        messages.append(
            Update.announce(
                50.0, 2, S5[0], PathAttributes(as_path=ASPath([2, 5]), next_hop=2)
            )
        )
        messages += _withdrawals(S7[:2], start=52.0)
        trace = ColumnarTrace.from_messages(messages)

        columnar, per_message = self._engines()
        for run in _single_peer_runs(trace, [3, 6]):
            columnar.process_columnar_run(run)
        for message in messages:
            per_message.process_message(message)

        assert list(columnar._recent_withdrawals) == list(
            per_message._recent_withdrawals
        )
        assert all(prefix not in columnar.current_rib() for prefix in S6[:5])

        columnar.flush_quiet_state()
        per_message.flush_quiet_state()
        assert columnar.current_rib() == per_message.current_rib()
        assert not columnar._recent_withdrawals
        # The flushed prefixes left the index too, exactly as per-message.
        assert columnar.index.prefixes_of_link == per_message.index.prefixes_of_link

    def test_force_inference_mid_columnar_burst_matches_per_message(self):
        """Probing a burst between two columnar chunks must see the same
        calculator state (and burst start) as per-message replay."""
        messages = _withdrawals(S6[:40], start=100.0)
        trace = ColumnarTrace.from_messages(messages)
        split = 25

        columnar, per_message = self._engines()
        first, second = _single_peer_runs(trace, [split])
        columnar.process_columnar_run(first)
        for message in messages[:split]:
            per_message.process_message(message)

        probe_time = messages[split - 1].timestamp + 0.01
        columnar_probe = columnar.force_inference(probe_time)
        per_message_probe = per_message.force_inference(probe_time)
        assert columnar_probe is not None
        assert columnar_probe == per_message_probe
        assert columnar.withdrawals_in_current_burst == split

        # The probe must not disturb the rest of the replay either.
        columnar.process_columnar_run(second)
        for message in messages[split:]:
            per_message.process_message(message)
        assert columnar.results == per_message.results
        assert columnar.withdrawals_in_current_burst == 40

    def test_flush_quiet_state_still_noop_during_columnar_burst(self):
        """Mid-burst flush stays a no-op after columnar ingestion."""
        messages = _withdrawals(S6[:20], start=100.0)
        trace = ColumnarTrace.from_messages(messages)
        engine, _ = self._engines()
        (run,) = _single_peer_runs(trace, [])
        engine.process_columnar_run(run)
        assert engine.detector.is_bursting
        rib_before = engine.current_rib()
        engine.flush_quiet_state()
        assert engine.current_rib() == rib_before
        assert engine.withdrawals_in_current_burst == 20

    def test_buffer_ages_across_chunk_boundaries(self):
        """A withdrawal buffered in chunk 1 must expire during chunk 2's
        quiet traffic — even when chunk 2 is announcement-only — so the
        next burst neither replays it nor backdates its start."""
        messages = _withdrawals(S5[:2], start=0.0, rate=10.0)
        messages.append(
            Update.announce(
                40.0, 2, S5[5], PathAttributes(as_path=ASPath([2, 5]), next_hop=2)
            )
        )
        messages += _withdrawals(S7[:15], start=100.0)
        trace = ColumnarTrace.from_messages(messages)

        columnar, per_message = self._engines()
        for run in _single_peer_runs(trace, [2, 3]):
            columnar.process_columnar_run(run)
        for message in messages:
            per_message.process_message(message)

        assert columnar.results == per_message.results
        result = columnar.force_inference(100.2)
        expected = per_message.force_inference(100.2)
        assert result == expected
        assert result.burst_start == pytest.approx(100.0)
        assert result.withdrawals_seen == 15


class TestTriggerRowWithAnnouncements:
    """Regression: a trigger-crossing UPDATE carrying announcements.

    ``process_message`` runs the trigger check in the withdrawal branch and
    applies the *same message's* announcements afterwards, so an
    announcement clearing an already-withdrawn prefix on the trigger row
    must not be visible to that inference.  The columnar burst span used to
    bulk-record the whole row (withdrawals and announcements) before
    inferring, which shrank the already-withdrawn set.
    """

    def _stream(self):
        messages = _withdrawals(S6[:30], start=100.0)
        # The 30th message crosses the trigger (trigger=30); give it an
        # announcement re-announcing an already-withdrawn prefix too.
        trigger_row = Update(
            timestamp=100.031,
            peer_as=2,
            announcements=(
                Update.announce(
                    100.031, 2, S6[0],
                    PathAttributes(as_path=ASPath([2, 3, 6]), next_hop=2),
                ).announcements[0],
            ),
            withdrawals=(S6[30],),
        )
        messages.append(trigger_row)
        messages += _withdrawals(S6[31:40], start=100.04)
        return messages

    def test_columnar_matches_per_message_on_mixed_trigger_row(self):
        config = _config(start_threshold=10, trigger=31)
        messages = self._stream()
        trace = ColumnarTrace.from_messages(messages)

        per_message = InferenceEngine(session_rib(), config=config)
        per_message.process_batch(messages)

        for max_run in (None, 5):
            columnar = InferenceEngine(session_rib(), config=config)
            for run in trace.iter_batches(max_run=max_run):
                columnar.process_columnar_run(run)
            assert columnar.results == per_message.results
            assert columnar.results, "the stream must cross the trigger"
            assert columnar.current_rib() == per_message.current_rib()


class TestRecordRunWindows:
    """`record_run` row-window edges (it is a public, duck-typed API)."""

    def test_empty_window_records_nothing(self):
        from repro.core.fit_score import FitScoreCalculator

        trace = ColumnarTrace()
        for index, prefix in enumerate(S6[:10]):
            trace.withdraw(float(index), 2, prefix)
        (run,) = trace.iter_batches()
        for calculator_class in (FitScoreCalculator, ReferenceFitScoreCalculator):
            calculator = calculator_class(session_rib())
            assert calculator.record_run(run, 0, 0) == 0
            assert calculator.record_run(run, 5, 5) == 0
            assert calculator.record_run(run, 5, 3) == 0
            assert calculator.total_withdrawals == 0
            assert calculator.record_run(run) == 10
            assert calculator.total_withdrawals == 10
