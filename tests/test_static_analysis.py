"""Tier-1 gate for the contract-enforcing static-analysis suite.

Three layers:

* **the gate** — the shipped tree (src + tests + benchmarks) must be
  clean under every registered rule, with no stale baseline entries, in
  well under the ~5 s budget;
* **the rules** — each checker fires exactly once on its ``*_bad.py``
  fixture and stays quiet on its ``*_ok.py`` counterpart (fixtures live
  in ``tests/analysis_fixtures/``, excluded from tree scans and loaded
  here with masqueraded relpaths so scoped rules apply);
* **the escape hatches** — suppression comments (inline and
  comment-block form), the baseline (grandfathering, staleness,
  malformed-file rejection) and the CLI's exit codes.
"""

import json
import os
import shutil
import subprocess
import sys
import time

import pytest

from repro.analysis import REGISTRY, run_analysis
from repro.analysis.baseline import load_baseline
from repro.analysis.core import (
    AnalysisError,
    Project,
    analyze_project,
    load_module,
)
from repro.analysis.fault_sites import FaultSiteChecker, known_sites_from_module
from repro.analysis.parity import ModulePair, ParityChecker
from repro.testing import faults

pytestmark = pytest.mark.analysis

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TESTS_DIR)
FIXTURES = os.path.join(TESTS_DIR, "analysis_fixtures")

EXPECTED_RULES = {
    "async-safety",
    "bench-schema",
    "durability-ordering",
    "fault-site-registry",
    "kernel-purity",
    "parity-pair",
}


def _fixture(name):
    return os.path.join(FIXTURES, name)


def _scan_fixture(name, relpath, checker):
    """Run one checker over one fixture file masquerading at ``relpath``."""
    module = load_module(_fixture(name), relpath=relpath)
    project = Project(REPO_ROOT, [module])
    return analyze_project(project, [checker])


def _checker(rule):
    return REGISTRY[rule]()


# -- the gate -----------------------------------------------------------------


def test_shipped_tree_is_clean_within_budget():
    started = time.monotonic()
    report = run_analysis(
        paths=["src", "tests", "benchmarks"], root=REPO_ROOT
    )
    elapsed = time.monotonic() - started
    assert set(report.rules) == EXPECTED_RULES
    assert report.findings == [], "\n".join(f.format() for f in report.findings)
    assert report.stale_baseline == []
    assert report.files_scanned > 100
    assert elapsed < 5.0, f"analysis gate took {elapsed:.2f}s (budget 5s)"


def test_every_baseline_entry_is_justified():
    baseline = load_baseline()
    for entry in baseline.entries:
        assert len(entry["justification"].split()) >= 5


# -- kernel-purity ------------------------------------------------------------


def test_kernel_purity_fires_on_numpy_in_stdlib_reference():
    findings = _scan_fixture(
        "kernel_purity_bad.py",
        "src/repro/core/kernels/stdlib.py",
        _checker("kernel-purity"),
    )
    assert [f.anchor for f in findings] == ["stdlib-numpy:numpy"]


def test_kernel_purity_fires_on_column_mutation():
    findings = _scan_fixture(
        "kernel_purity_mutation_bad.py",
        "src/repro/core/kernels/fancy.py",
        _checker("kernel-purity"),
    )
    assert [f.anchor for f in findings] == ["mutation:rewrite_times:times"]


def test_kernel_purity_quiet_on_guarded_backend():
    findings = _scan_fixture(
        "kernel_purity_ok.py",
        "src/repro/core/kernels/fancy.py",
        _checker("kernel-purity"),
    )
    assert findings == []


# -- parity-pair --------------------------------------------------------------


def _parity_checker(twin_fixture):
    pair = ModulePair(
        "tests/analysis_fixtures/parity_ref.py",
        "tests/analysis_fixtures/" + twin_fixture,
    )
    return ParityChecker(class_pairs=(), module_pairs=(pair,), method_pairs=())


def _run_parity(twin_fixture):
    ref = load_module(
        _fixture("parity_ref.py"), relpath="tests/analysis_fixtures/parity_ref.py"
    )
    twin = load_module(
        _fixture(twin_fixture), relpath="tests/analysis_fixtures/" + twin_fixture
    )
    project = Project(REPO_ROOT, [ref, twin])
    return analyze_project(project, [_parity_checker(twin_fixture)])


def test_parity_fires_on_signature_drift():
    findings = _run_parity("parity_twin_bad.py")
    assert [f.anchor for f in findings] == ["signature:find_crossing"]


def test_parity_fires_on_missing_all_entry():
    findings = _run_parity("parity_all_bad.py")
    assert [f.anchor for f in findings] == ["all:run_lengths"]


def test_parity_quiet_on_compatible_twin():
    assert _run_parity("parity_twin_ok.py") == []


def test_parity_defaults_hold_on_real_tree():
    project = Project(REPO_ROOT, [])
    assert list(ParityChecker().finalize(project)) == []


# -- async-safety -------------------------------------------------------------


def test_async_safety_fires_on_blocking_sleep():
    findings = _scan_fixture(
        "async_safety_bad.py", "src/repro/ingest/fancy.py", _checker("async-safety")
    )
    assert [f.anchor for f in findings] == ["poll_feed:time.sleep"]


def test_async_safety_quiet_on_async_idioms():
    findings = _scan_fixture(
        "async_safety_ok.py", "src/repro/ingest/fancy.py", _checker("async-safety")
    )
    assert findings == []


# -- durability-ordering ------------------------------------------------------


def test_durability_fires_on_bare_write():
    findings = _scan_fixture(
        "durability_bad.py", "src/repro/fancy.py", _checker("durability-ordering")
    )
    assert [f.anchor for f in findings] == ["save_state:open"]


def test_durability_quiet_on_write_atomic():
    findings = _scan_fixture(
        "durability_ok.py", "src/repro/fancy.py", _checker("durability-ordering")
    )
    assert findings == []


# -- fault-site-registry ------------------------------------------------------


def test_fault_sites_fires_on_unknown_site():
    findings = _scan_fixture(
        "fault_sites_bad.py",
        "src/repro/fancy.py",
        FaultSiteChecker(known_sites=["fixture.known"]),
    )
    assert [f.anchor for f in findings] == ["unknown-site:fixture.unknown"]


def test_fault_sites_quiet_on_registered_sites():
    findings = _scan_fixture(
        "fault_sites_ok.py",
        "src/repro/fancy.py",
        FaultSiteChecker(known_sites=["fixture.known"]),
    )
    assert findings == []


def test_known_sites_constant_matches_parsed_registry():
    module = load_module(
        os.path.join(REPO_ROOT, "src", "repro", "testing", "faults.py"),
        relpath="src/repro/testing/faults.py",
    )
    parsed = known_sites_from_module(module)
    assert parsed is not None
    sites, _line = parsed
    assert set(sites) == set(faults.KNOWN_SITES)
    for site, (key_shape, kinds) in faults.KNOWN_SITES.items():
        assert key_shape
        assert kinds and set(kinds) <= set(faults.KINDS), site


# -- bench-schema -------------------------------------------------------------


def test_bench_schema_fires_without_bench_env():
    findings = _scan_fixture(
        "bench_schema_bad.py",
        "benchmarks/test_bench_fixture.py",
        _checker("bench-schema"),
    )
    assert [f.anchor for f in findings] == ["missing-bench-env-call"]


def test_bench_schema_quiet_with_bench_env():
    findings = _scan_fixture(
        "bench_schema_ok.py",
        "benchmarks/test_bench_fixture.py",
        _checker("bench-schema"),
    )
    assert findings == []


# -- suppressions -------------------------------------------------------------


def test_suppression_comment_silences_inline_and_block_forms():
    findings = _scan_fixture(
        "durability_suppressed.py",
        "src/repro/fancy.py",
        _checker("durability-ordering"),
    )
    assert findings == []


# -- baseline -----------------------------------------------------------------


def _tmp_tree_with_violation(tmp_path):
    """A throwaway repo root holding one durability violation."""
    target_dir = tmp_path / "src" / "repro"
    target_dir.mkdir(parents=True)
    shutil.copy(_fixture("durability_bad.py"), target_dir / "state.py")
    return tmp_path


def test_baseline_grandfathers_and_reports_staleness(tmp_path):
    root = _tmp_tree_with_violation(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            [
                {
                    "rule": "durability-ordering",
                    "path": "src/repro/state.py",
                    "anchor": "save_state:open",
                    "justification": "fixture entry used by the analyzer test suite",
                },
                {
                    "rule": "durability-ordering",
                    "path": "src/repro/gone.py",
                    "anchor": "never_fires:open",
                    "justification": "stale fixture entry that matches nothing",
                },
            ]
        )
    )
    report = run_analysis(
        paths=["src"],
        rules=["durability-ordering"],
        root=str(root),
        baseline_path=str(baseline_path),
    )
    assert report.ok
    assert [f.anchor for f in report.baselined] == ["save_state:open"]
    assert [e["path"] for e in report.stale_baseline] == ["src/repro/gone.py"]

    unbaselined = run_analysis(
        paths=["src"],
        rules=["durability-ordering"],
        root=str(root),
        use_baseline=False,
    )
    assert not unbaselined.ok
    assert [f.anchor for f in unbaselined.findings] == ["save_state:open"]


def test_malformed_baseline_is_rejected(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps([{"rule": "durability-ordering", "path": "x.py", "anchor": "a"}])
    )
    with pytest.raises(AnalysisError, match="justification"):
        load_baseline(str(baseline_path))


# -- CLI ----------------------------------------------------------------------


def _run_cli(args, cwd):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis"] + args,
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )


def test_cli_exits_zero_on_clean_tree_and_nonzero_on_findings(tmp_path):
    clean = _run_cli(["--json", "src"], cwd=REPO_ROOT)
    assert clean.returncode == 0, clean.stdout + clean.stderr
    payload = json.loads(clean.stdout)
    assert payload["ok"] is True
    assert set(payload["rules"]) == EXPECTED_RULES

    root = _tmp_tree_with_violation(tmp_path)
    dirty = _run_cli(
        ["--rule", "durability-ordering", "--root", str(root), "src"],
        cwd=str(root),
    )
    assert dirty.returncode == 1, dirty.stdout + dirty.stderr
    assert "durability-ordering" in dirty.stdout
