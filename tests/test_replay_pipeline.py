"""Parity tests for the batch-first replay pipeline.

Four equivalences underpin the batched/incremental fast paths:

* ``BGPSpeaker.receive_batch`` == per-message ``receive`` (final Loc-RIB and
  the set of loss-of-reachability / recovery events), including batches where
  several messages touch the same prefix;
* incremental ``SwiftedRouter.provision()`` == a from-scratch rebuild (tags,
  backup table, engine RIB views, and the inference results of a subsequent
  burst);
* the incremental running-sum aggregation == the reference ``score_set``
  re-summation;
* the streaming trace generator == its eager materialisation.
"""

import random

import pytest

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import Update
from repro.bgp.prefix import Prefix, prefix_block
from repro.bgp.speaker import BGPSpeaker
from repro.casestudy.testbed import build_fig1_scenario
from repro.casestudy.vanilla import VanillaRouterModel
from repro.core import SwiftConfig, SwiftedRouter
from repro.core.burst_detection import BurstDetectorConfig
from repro.core.encoding import EncoderConfig
from repro.core.fit_score import FitScoreCalculator
from repro.core.history import TriggeringSchedule
from repro.core.inference import InferenceConfig
from repro.traces.synthetic import SyntheticTraceConfig, SyntheticTraceGenerator


def _attrs(path, next_hop, local_pref=100):
    return PathAttributes(as_path=ASPath(path), next_hop=next_hop, local_pref=local_pref)


def _speaker(peers=(2, 3, 4)):
    speaker = BGPSpeaker(1)
    for peer in peers:
        speaker.add_peer(peer)
    return speaker


def _loc_rib_snapshot(speaker):
    """(best routes, candidate routes) snapshot for state comparison."""
    best = {
        entry.prefix: (entry.peer_as, entry.as_path.asns)
        for entry in speaker.loc_rib.best_entries()
    }
    candidates = {
        prefix: sorted(
            (entry.peer_as, entry.as_path.asns)
            for entry in speaker.loc_rib.candidates(prefix)
        )
        for prefix in set(best) | set(speaker.loc_rib._candidates)
    }
    return best, candidates


def _event_sets(changes):
    losses = sorted(c.prefix for c in changes if c.is_loss_of_reachability)
    recoveries = sorted(c.prefix for c in changes if c.is_recovery)
    return losses, recoveries


def _random_messages(prefixes, rng, count=400, peers=(2, 3, 4)):
    """A randomised mixed announce/withdraw stream over a small prefix set.

    Prefixes repeat freely across messages, which is exactly the case where
    batching must still report transient blackholes.
    """
    messages = []
    for step in range(count):
        peer = peers[rng.randrange(len(peers))]
        prefix = prefixes[rng.randrange(len(prefixes))]
        timestamp = step * 0.01
        if rng.random() < 0.45:
            messages.append(Update.withdraw(timestamp, peer, prefix))
        else:
            path = [peer, 5 + rng.randrange(3), 9]
            messages.append(
                Update.announce(
                    timestamp, peer, prefix, _attrs(path, peer, 100 + 10 * peer)
                )
            )
    return messages


class TestSpeakerBatchParity:
    def test_final_state_and_events_match_per_message(self):
        prefixes = prefix_block("10.0.0.0/24", 40)
        rng = random.Random(3)
        messages = _random_messages(prefixes, rng)

        sequential = _speaker()
        per_message_changes = []
        for message in messages:
            per_message_changes.extend(sequential.receive(message))

        batched = _speaker()
        batched_changes = batched.receive_batch(messages)

        assert _loc_rib_snapshot(batched) == _loc_rib_snapshot(sequential)
        assert _event_sets(batched_changes) == _event_sets(per_message_changes)

    def test_transient_blackhole_is_reported(self):
        """Withdraw-then-reannounce of the same prefix in one batch."""
        prefix = Prefix.from_string("10.1.0.0/24")
        speaker = _speaker(peers=(2,))
        speaker.receive(Update.announce(0.0, 2, prefix, _attrs([2, 6], 2)))

        batch = [
            Update.withdraw(1.0, 2, prefix),
            Update.announce(2.0, 2, prefix, _attrs([2, 7, 6], 2)),
        ]
        changes = speaker.receive_batch(batch)
        losses, recoveries = _event_sets(changes)
        assert losses == [prefix]
        assert recoveries == [prefix]
        assert speaker.best_route(prefix).as_path.asns == (2, 7, 6)

    def test_same_message_withdraw_and_announce_coalesces(self):
        """One UPDATE withdrawing and re-announcing a prefix stays atomic."""
        prefix = Prefix.from_string("10.1.0.0/24")
        for batched in (False, True):
            speaker = _speaker(peers=(2,))
            speaker.receive(Update.announce(0.0, 2, prefix, _attrs([2, 6], 2)))
            update = Update(
                timestamp=1.0,
                peer_as=2,
                withdrawals=(prefix,),
                announcements=(
                    Update.announce(1.0, 2, prefix, _attrs([2, 7, 6], 2)).announcements[0]
                ,),
            )
            changes = (
                speaker.receive_batch([update]) if batched else speaker.receive(update)
            )
            losses, recoveries = _event_sets(changes)
            assert losses == [] and recoveries == []

    def test_looped_candidates_do_not_mask_or_fake_events(self):
        """A looped-path announcement is unusable: no phantom recovery, and
        a withdrawal leaving only looped candidates is still a loss."""
        prefix = Prefix.from_string("10.1.0.0/24")

        # Phantom recovery: withdraw the only route, announce a looped path.
        for batched in (False, True):
            speaker = _speaker(peers=(2, 3))
            speaker.receive(Update.announce(0.0, 2, prefix, _attrs([2, 6], 2)))
            batch = [
                Update.withdraw(1.0, 2, prefix),
                Update.announce(2.0, 3, prefix, _attrs([3, 7, 3], 3)),
            ]
            changes = (
                speaker.receive_batch(batch)
                if batched
                else [c for m in batch for c in speaker.receive(m)]
            )
            losses, recoveries = _event_sets(changes)
            assert losses == [prefix], (batched, losses)
            assert recoveries == [], (batched, recoveries)
            assert speaker.best_route(prefix) is None

        # Masked loss: the surviving candidate has a loop.
        for batched in (False, True):
            speaker = _speaker(peers=(2, 3))
            speaker.receive(Update.announce(0.0, 2, prefix, _attrs([2, 6], 2)))
            speaker.receive(Update.announce(0.5, 3, prefix, _attrs([3, 7, 3], 3)))
            withdraw = Update.withdraw(1.0, 2, prefix)
            changes = (
                speaker.receive_batch([withdraw])
                if batched
                else speaker.receive(withdraw)
            )
            losses, _ = _event_sets(changes)
            assert losses == [prefix], (batched, losses)

    def test_listeners_see_every_change_once(self):
        prefixes = prefix_block("10.0.0.0/24", 20)
        rng = random.Random(11)
        messages = _random_messages(prefixes, rng, count=150)

        speaker = _speaker()
        heard = []
        speaker.add_best_route_listener(heard.extend)
        returned = speaker.receive_batch(messages)
        assert heard == returned

    def test_batch_decision_runs_once_per_touched_prefix(self):
        """Distinct prefixes in one batch yield exactly one change each."""
        prefixes = prefix_block("10.0.0.0/24", 30)
        speaker = _speaker(peers=(2,))
        batch = [
            Update.announce(float(i), 2, prefix, _attrs([2, 6], 2))
            for i, prefix in enumerate(prefixes)
        ]
        changes = speaker.receive_batch(batch)
        assert len(changes) == len(prefixes)
        assert sorted(c.prefix for c in changes) == sorted(prefixes)


def _small_swift_config():
    return SwiftConfig(
        inference=InferenceConfig(
            detector=BurstDetectorConfig(start_threshold=100, stop_threshold=1),
            schedule=TriggeringSchedule(steps=((200, 10 ** 6),), unconditional_after=200),
        ),
        encoder=EncoderConfig(prefix_threshold=50),
    )


def _loaded_router(prefix_count=800):
    s6 = prefix_block("60.0.0.0/24", prefix_count)
    router = SwiftedRouter(1, _small_swift_config())
    for peer in (2, 3, 4):
        router.add_peer(peer)
    router.load_initial_routes(2, {p: ASPath([2, 5, 6]) for p in s6}, local_pref=200)
    router.load_initial_routes(3, {p: ASPath([3, 6]) for p in s6}, local_pref=100)
    router.load_initial_routes(4, {p: ASPath([4, 5, 6]) for p in s6}, local_pref=150)
    return router, s6


def _backup_snapshot(router):
    return {
        prefix: {link: sel.next_hop for link, sel in per_link.items()}
        for prefix, per_link in router.backup_table.items()
    }


def _engine_snapshot(router):
    return {
        peer: dict(router.engine_for(peer).current_rib())
        for peer in router.speaker.peer_ases
    }


class TestIncrementalProvisionParity:
    def _churn(self, router, s6, extra):
        """Quiet-time churn after the first provision: withdrawals and moves."""
        messages = []
        # Slow withdrawals on AS 2 (spaced out: never a burst).
        for i, prefix in enumerate(s6[:30]):
            messages.append(Update.withdraw(100.0 + i * 30.0, 2, prefix))
        # Path changes on AS 4.
        for i, prefix in enumerate(s6[30:60]):
            messages.append(
                Update.announce(
                    110.0 + i * 30.0, 4, prefix, _attrs([4, 8, 6], 4, 150)
                )
            )
        messages.sort(key=lambda m: m.timestamp)
        router.receive_batch(messages)
        # Out-of-band: new routes loaded directly (bypassing the engines).
        router.load_initial_routes(
            3, {p: ASPath([3, 9, 6]) for p in extra}, timestamp=2000.0, local_pref=100
        )
        return messages

    def test_incremental_matches_full_rebuild(self):
        extra = prefix_block("70.0.0.0/24", 50)

        warm, s6 = _loaded_router()
        warm.provision()
        churn = self._churn(warm, s6, extra)
        warm.provision()
        assert warm.last_provision_stats["mode"] == 1, "expected the incremental path"

        cold, _ = _loaded_router()
        cold.provision()
        self._churn(cold, s6, extra)
        cold.provision(full_rebuild=True)
        assert cold.last_provision_stats["mode"] == 0

        assert warm.encoded_tags.tags == cold.encoded_tags.tags
        assert warm.encoded_tags.next_hop_ids == cold.encoded_tags.next_hop_ids
        assert _backup_snapshot(warm) == _backup_snapshot(cold)
        assert _engine_snapshot(warm) == _engine_snapshot(cold)

        # The engines produce identical inferences on a subsequent burst.
        burst = [
            Update.withdraw(5000.0 + i * 0.001, 2, prefix)
            for i, prefix in enumerate(s6[60:460])
        ]
        warm_actions = warm.receive_batch(list(burst))
        cold_actions = cold.receive_batch(list(burst))
        assert [a.inferred_links for a in warm_actions] == [
            a.inferred_links for a in cold_actions
        ]
        assert [a.rerouted_prefixes for a in warm_actions] == [
            a.rerouted_prefixes for a in cold_actions
        ]
        warm_results = warm.engine_for(2).results
        cold_results = cold.engine_for(2).results
        assert warm_results == cold_results

    def test_clean_reprovision_is_a_noop(self):
        router, s6 = _loaded_router(prefix_count=300)
        encoded_first = router.provision()
        encoded_second = router.provision()
        assert router.last_provision_stats == {
            "mode": 1,
            "dirty_prefixes": 0,
            "engine_deltas": 0,
        }
        # Nothing changed: the provision-time artefacts are reused as-is.
        assert encoded_second is encoded_first
        # Engines survive (same objects), instead of being rebuilt.
        engine = router.engine_for(2)
        router.provision()
        assert router.engine_for(2) is engine

    def test_warm_provision_clears_swift_rules(self):
        """Re-provisioning restores BGP-derived forwarding on both paths."""
        from repro.core.swifted_router import SWIFT_RULE_PRIORITY

        router, s6 = _loaded_router()
        router.provision()
        burst = [
            Update.withdraw(10.0 + i * 0.001, 2, prefix)
            for i, prefix in enumerate(s6[:400])
        ]
        actions = router.receive_batch(burst)
        assert actions, "the burst should trigger a reroute"
        router.provision()
        assert router.last_provision_stats["mode"] == 1
        # No SWIFT-priority rules survive a warm provision.
        assert router.forwarding.clear_rules(min_priority=SWIFT_RULE_PRIORITY) == 0

    def test_peer_set_change_forces_rebuild(self):
        router, s6 = _loaded_router(prefix_count=200)
        router.provision()
        router.add_peer(7)
        router.load_initial_routes(7, {p: ASPath([7, 6]) for p in s6[:50]})
        router.provision()
        assert router.last_provision_stats["mode"] == 0
        assert 7 in router.encoded_tags.next_hop_ids


class TestIncrementalAggregateParity:
    def test_score_from_counts_matches_score_set(self):
        rib = {}
        prefixes = prefix_block("20.0.0.0/24", 600)
        rng = random.Random(5)
        for prefix in prefixes:
            mid = 50 + rng.randrange(6)
            tail = 90 + rng.randrange(4)
            rib[prefix] = ASPath([2, mid, tail])
        calculator = FitScoreCalculator(rib)
        withdrawn = [p for p in prefixes if rib[p].asns[1] in (50, 51)]
        calculator.record_withdrawals(withdrawn[: len(withdrawn) // 2])

        scores = calculator.all_scores()
        assert len(scores) >= 2
        links = [score.links[0] for score in scores]
        for size in range(2, len(links) + 1):
            subset = links[:size]
            reference = calculator.score_set(subset)
            running_w = sum(calculator.withdrawal_count(l) for l in subset)
            running_p = sum(calculator.still_routed_count(l) for l in subset)
            incremental = calculator.score_from_counts(subset, running_w, running_p)
            assert incremental == reference


class TestStreamingTraceParity:
    @pytest.fixture(scope="class")
    def config(self):
        return SyntheticTraceConfig(
            peer_count=3,
            duration_days=4,
            min_table_size=2000,
            max_table_size=5000,
            noise_rate_per_second=0.02,
            seed=17,
        )

    def test_stream_messages_match_materialised_trace(self, config):
        stream = SyntheticTraceGenerator(config).stream()
        trace = SyntheticTraceGenerator(config).generate()
        for peer in trace.peers:
            streamed = list(stream.iter_messages(peer.peer_as))
            eager = trace.messages_of(peer.peer_as)
            # Same multiset of messages, both in timestamp order (the merge
            # may order equal timestamps differently than the eager sort).
            assert len(streamed) == len(eager)
            assert sorted(m.timestamp for m in streamed) == [
                m.timestamp for m in streamed
            ]
            key = lambda m: (m.timestamp, repr(m))
            assert sorted(streamed, key=key) == sorted(eager, key=key)

    def test_stream_bursts_match_materialised_bursts(self, config):
        stream = SyntheticTraceGenerator(config).stream()
        trace = SyntheticTraceGenerator(config).generate()
        for peer in trace.peers:
            streamed = list(stream.iter_bursts(peer.peer_as))
            eager = trace.bursts_of(peer.peer_as)
            assert [b.failed_link for b in streamed] == [b.failed_link for b in eager]
            assert [b.withdrawn_prefixes for b in streamed] == [
                b.withdrawn_prefixes for b in eager
            ]
            assert [b.size for b in streamed] == [b.size for b in eager]

    def test_lazy_head_consumption_does_not_build_everything(self, config):
        generator = SyntheticTraceGenerator(config)
        stream = generator.stream()
        peer_as = stream.peers[0].peer_as
        iterator = stream.iter_messages(peer_as)
        head = [next(iterator) for _ in range(5)]
        assert len(head) == 5
        assert all(
            head[i].timestamp <= head[i + 1].timestamp for i in range(len(head) - 1)
        )


class TestVanillaSpeakerReplay:
    def test_transient_blackhole_counted_once(self):
        """Withdraw-then-reannounce of the sole route: one FIB-install slot.

        The batched replay emits both a synthetic recovery and the coalesced
        final change for such a prefix; the pipeline must not charge the
        per-prefix install cost twice.
        """
        from repro.casestudy.testbed import Fig1Scenario

        prefixes = prefix_block("60.0.0.0/24", 3)
        burst = []
        for index, prefix in enumerate(prefixes):
            burst.append(Update.withdraw(0.001 * index, 2, prefix))
            burst.append(
                Update.announce(
                    0.001 * index + 0.0005,
                    2,
                    prefix,
                    PathAttributes(as_path=ASPath([2, 9, 6]), next_hop=2, local_pref=200),
                )
            )
        scenario = Fig1Scenario(
            prefix_count=len(prefixes),
            prefixes=list(prefixes),
            routes_via_peer={2: {p: ASPath([2, 5, 6]) for p in prefixes}},
            local_pref_of_peer={2: 200},
            failed_link=(5, 6),
            surviving_next_hops=frozenset({2}),
            burst_messages=burst,
            probe_prefixes=list(prefixes),
            failure_time=0.0,
        )
        model = VanillaRouterModel()
        result = model.converge_scenario_with_speaker(scenario)
        assert set(result.recovery_time_of) == set(prefixes)
        per_prefix = (
            model.timing.per_prefix_processing_seconds
            + model.timing.per_prefix_seconds
        )
        # Three prefixes -> at most three serial install slots (plus the
        # arrival offsets); a double-counted prefix would exceed this.
        assert result.total_convergence_seconds <= 3 * per_prefix + 0.01

    def test_speaker_replay_recovers_everything_via_survivor(self):
        scenario = build_fig1_scenario(prefix_count=2000, seed=4)
        model = VanillaRouterModel()
        analytic = model.converge_scenario(scenario)
        speaker_based = model.converge_scenario_with_speaker(scenario)
        # Every prefix recovers (AS 3 survives), through the real decision
        # process, and the convergence time matches the analytic pipeline.
        assert len(speaker_based.recovery_time_of) == scenario.prefix_count
        assert speaker_based.total_convergence_seconds == pytest.approx(
            analytic.total_convergence_seconds, rel=0.05
        )
