"""Column-native inference parity matrix.

The tentpole claim of the column-native refactor: driving the whole replay
stack — speaker *and* inference engines — straight from the columns changes
nothing observable.  Asserted here as a matrix over

* router mode: SWIFTED (engines, reroutes) x speaker-only,
* cache temperature: cold (streams generated into columns this process) x
  warm (streams reloaded through the mmap-backed ``.cols`` store),
* kernel backend: every available :mod:`repro.core.kernels` backend
  (stdlib always; numpy when importable),

comparing ``FleetReplayResult.signature()`` *byte-for-byte* (pickled) between
the column-native path and the materialising object path
(``column_native=False``), plus a construction probe proving the native
SWIFTED path materialises zero ``BGPMessage`` objects.
"""

import os
import pickle

import pytest

from repro.core import kernels
from repro.core.history import TriggeringSchedule
from repro.core.inference import InferenceConfig
from repro.core.swifted_router import SwiftConfig
from repro.replay import build_session_jobs, replay_jobs
from repro.traces import columnar

#: Same corpus shape as the fleet parity suite: small enough for tier-1,
#: bursty enough that SWIFT demonstrably fires on several sessions.
from repro.traces.synthetic import SyntheticTraceConfig

#: Seed 17 places real bursts on 3 of the 4 peers (same corpus as the fleet
#: parity suite), so the SWIFTED half of the matrix demonstrably reroutes.
_CORPUS = SyntheticTraceConfig(
    peer_count=4,
    duration_days=4.0,
    min_table_size=1500,
    max_table_size=4000,
    burst_size_minimum=400,
    noise_rate_per_second=0.01,
    seed=17,
)

_SWIFT = SwiftConfig(
    inference=InferenceConfig(
        schedule=TriggeringSchedule(steps=((300, 100000),), unconditional_after=500)
    )
)


@pytest.fixture(scope="module")
def job_matrix(tmp_path_factory):
    """(cold jobs, warm jobs) over a private trace cache.

    The first build generates every stream into columns; the second runs
    against the now-populated cache, so its payloads come off the ``.cols``
    mmap store — the warm half of the matrix.
    """
    previous = os.environ.get("REPRO_TRACE_CACHE")
    cache_dir = str(tmp_path_factory.mktemp("columnar_matrix_cache"))
    os.environ["REPRO_TRACE_CACHE"] = cache_dir
    try:
        cold = build_session_jobs(_CORPUS)
        assert any(name.endswith(".cols") for name in os.listdir(cache_dir))
        warm = build_session_jobs(_CORPUS)
        return cold, warm
    finally:
        if previous is None:
            del os.environ["REPRO_TRACE_CACHE"]
        else:
            os.environ["REPRO_TRACE_CACHE"] = previous


def _signature_bytes(jobs, swifted, column_native, kernel_backend=None):
    result = replay_jobs(
        jobs,
        workers=1,
        swifted=swifted,
        swift_config=_SWIFT if swifted else None,
        column_native=column_native,
        kernel_backend=kernel_backend,
    )
    return result, pickle.dumps(result.signature())


class TestColumnarEnginePathParityMatrix:
    @pytest.mark.parametrize("temperature", ["cold", "warm"])
    @pytest.mark.parametrize("swifted", [True, False], ids=["swifted", "speaker_only"])
    def test_signature_byte_identical_to_materialising_path(
        self, job_matrix, temperature, swifted
    ):
        jobs = job_matrix[0] if temperature == "cold" else job_matrix[1]
        native, native_bytes = _signature_bytes(jobs, swifted, column_native=True)
        _, materialised_bytes = _signature_bytes(jobs, swifted, column_native=False)
        assert native_bytes == materialised_bytes
        if swifted:
            assert native.reroutes > 0, "the corpus must exercise the reroute path"
        else:
            assert native.losses > 0, "withdrawal bursts must surface loss events"

    @pytest.mark.kernels
    @pytest.mark.parametrize("temperature", ["cold", "warm"])
    @pytest.mark.parametrize("swifted", [True, False], ids=["swifted", "speaker_only"])
    def test_every_kernel_backend_matches_materialising_path(
        self, job_matrix, temperature, swifted
    ):
        """backend x router-mode x cache-temperature, byte-for-byte."""
        jobs = job_matrix[0] if temperature == "cold" else job_matrix[1]
        _, materialised_bytes = _signature_bytes(jobs, swifted, column_native=False)
        for backend in kernels.available_backends():
            _, native_bytes = _signature_bytes(
                jobs, swifted, column_native=True, kernel_backend=backend
            )
            assert native_bytes == materialised_bytes, (backend, swifted, temperature)

    def test_cold_and_warm_payloads_replay_identically(self, job_matrix):
        cold, warm = job_matrix
        _, cold_bytes = _signature_bytes(cold, swifted=True, column_native=True)
        _, warm_bytes = _signature_bytes(warm, swifted=True, column_native=True)
        assert cold_bytes == warm_bytes

    def test_native_swifted_path_materialises_no_messages(self, job_matrix):
        """Construction probe: zero `message_at` calls on the native path."""
        calls = []
        original = columnar.ColumnarTrace.message_at

        def counting(self, index):
            calls.append(index)
            return original(self, index)

        columnar.ColumnarTrace.message_at = counting
        try:
            native, _ = _signature_bytes(
                job_matrix[0], swifted=True, column_native=True
            )
            assert native.message_count > 0
            assert calls == []
            _signature_bytes(job_matrix[0], swifted=True, column_native=False)
            assert len(calls) == native.message_count
        finally:
            columnar.ColumnarTrace.message_at = original
