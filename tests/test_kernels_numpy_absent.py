"""numpy stays optional: the whole package must work with numpy absent.

Runs a subprocess whose import machinery refuses ``numpy`` (a meta-path
hook ahead of every finder — monkeypatching in-process would miss modules
that already imported it), then imports every module under ``src/repro/``,
checks the kernel seam auto-selects stdlib, and replays a small corpus.
"""

import os
import subprocess
import sys
import textwrap

import pytest

pytestmark = pytest.mark.kernels

_SCRIPT = textwrap.dedent(
    """
    import importlib
    import pkgutil
    import sys

    class _NumpyBlocker:
        def find_spec(self, name, path=None, target=None):
            if name == "numpy" or name.startswith("numpy."):
                raise ImportError("numpy blocked for the optional-dependency test")
            return None

    sys.meta_path.insert(0, _NumpyBlocker())

    try:
        import numpy  # noqa: F401
    except ImportError:
        pass
    else:
        raise SystemExit("blocker failed: numpy imported")

    # Every module under src/repro/ must import without numpy.
    import repro

    failures = []
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        try:
            importlib.import_module(module.name)
        except ImportError as error:
            failures.append((module.name, str(error)))
    if failures:
        raise SystemExit(f"import failures without numpy: {failures}")

    from repro.core import kernels

    assert kernels.available_backends() == ["stdlib"]
    assert kernels.default_backend().NAME == "stdlib"
    assert kernels.numpy_version() == "absent"
    assert not kernels.default_backend().VECTORISED
    try:
        kernels.get_backend("numpy")
    except RuntimeError:
        pass
    else:
        raise SystemExit("explicit numpy request should raise without numpy")

    # And a small end-to-end replay still runs (stdlib auto-selected).
    from repro.replay.fleet import build_session_jobs, replay_jobs
    from repro.traces.synthetic import SyntheticTraceConfig

    config = SyntheticTraceConfig(peer_count=2, duration_days=1.0, seed=7)
    result = replay_jobs(build_session_jobs(config), workers=1)
    assert result.session_count == 2
    assert result.message_count > 0
    print("numpy-absent replay OK")
    """
)


def test_package_and_replay_work_without_numpy(tmp_path):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src
    # Private trace cache: do not touch (or depend on) the repo-level cache.
    env["REPRO_TRACE_CACHE"] = str(tmp_path / "cache")
    completed = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr or completed.stdout
    assert "numpy-absent replay OK" in completed.stdout
