"""Tests for the §3.3 loop-guard monitor."""

import pytest

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import KeepAlive, Update
from repro.bgp.prefix import prefix_block
from repro.core.loop_guard import LoopGuard

PFX = prefix_block("60.0.0.0/24", 20)


def _watch_all(guard, next_hop=3, path=None, avoided=((5, 6),)):
    path = path or ASPath([3, 6])
    for prefix in PFX:
        guard.watch(prefix, next_hop, path, avoided)


class TestLoopGuard:
    def test_alert_on_backup_withdrawal(self):
        guard = LoopGuard()
        _watch_all(guard)
        alerts = guard.observe(Update.withdraw(10.0, 3, PFX[0]))
        assert len(alerts) == 1
        assert alerts[0].prefix == PFX[0]
        assert "withdrew" in alerts[0].reason
        # The alerted prefix is no longer watched; others still are.
        assert guard.watched_count == len(PFX) - 1

    def test_alert_on_backup_switching_to_avoided_link(self):
        guard = LoopGuard()
        _watch_all(guard, avoided=((5, 6),))
        bad_path = PathAttributes(as_path=ASPath([3, 5, 6]), next_hop=3)
        alerts = guard.observe(Update.announce(11.0, 3, PFX[1], bad_path))
        assert len(alerts) == 1
        assert "avoided link" in alerts[0].reason

    def test_no_alert_for_harmless_updates(self):
        guard = LoopGuard()
        _watch_all(guard)
        good_path = PathAttributes(as_path=ASPath([3, 9, 6]), next_hop=3)
        assert guard.observe(Update.announce(11.0, 3, PFX[1], good_path)) == []
        # Messages from other peers about the watched prefix are ignored.
        assert guard.observe(Update.withdraw(12.0, 2, PFX[1])) == []
        # Non-update messages are ignored.
        assert guard.observe(KeepAlive(13.0, 3)) == []
        assert guard.watched_count == len(PFX)

    def test_callback_and_release(self):
        seen = []
        guard = LoopGuard(on_alert=seen.append)
        _watch_all(guard)
        guard.observe_stream([Update.withdraw(10.0, 3, p) for p in PFX[:5]])
        assert len(seen) == 5
        guard.release_all()
        assert guard.watched_count == 0

    def test_watch_reroute_helper(self):
        guard = LoopGuard()
        paths = {p: ASPath([3, 6]) for p in PFX[:10]}
        count = guard.watch_reroute(
            PFX, backup_next_hop=3, backup_path_of=paths.get, avoided_links=[(5, 6)]
        )
        assert count == 10
        assert guard.watched_count == 10
