"""Unit tests for covering-prefix backup aggregation.

Small hand-built tables exercising the invariants documented on
:class:`repro.core.backup.AggregatedBackupTable`:

* children sharing the covering prefix's candidate profile are elided and
  resolve through the cover's entry;
* a profile change (divergent child) creates a new stored entry, and the
  chain rule applies below it;
* protected prefixes with no valid backups become *empty* boundary markers
  so their descendants cannot match a wrong-profile ancestor;
* expansion over the protected prefixes is byte-identical (pickle) to
  :meth:`BackupComputer.compute_table_reference`;
* capacity-limited policies fall back to exact per-prefix storage.

The full-scale (~1M prefix) version of these assertions runs in
``benchmarks/test_bench_fulltable.py``.
"""

import pickle

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.prefix import Prefix
from repro.bgp.rib import RibEntry
from repro.core.backup import AggregatedBackupTable, BackupComputer, ReroutingPolicy

_LOCAL_AS = 65000


def _entry(prefix, attributes):
    return RibEntry(prefix, attributes, attributes.next_hop)


def _attrs(peer, *hops):
    return PathAttributes(as_path=ASPath((peer,) + hops), next_hop=peer)


class _Table:
    """A hand-built Loc-RIB slice: per-prefix best + alternates."""

    def __init__(self):
        self.best = {}
        self.alternates = {}

    def add(self, prefix, best_attrs, alt_attrs_list):
        self.best[prefix] = _entry(prefix, best_attrs)
        self.alternates[prefix] = [_entry(prefix, a) for a in alt_attrs_list]

    def alternates_of(self, prefix):
        return self.alternates[prefix]

    def candidates_of(self, prefix):
        best = self.best[prefix]
        candidates = {best.peer_as: best}
        for entry in self.alternates[prefix]:
            candidates[entry.peer_as] = entry
        return candidates


def _nested_table():
    """10.0.0.0/16 cover; two same-profile /24s; a divergent /24 with a
    same-profile /25 grandchild; one unrelated flat prefix."""
    table = _Table()
    best = _attrs(65001, 200, 300)
    alt = _attrs(65002, 400, 300)
    best_div = _attrs(65001, 500, 600)
    alt_div = _attrs(65002, 700, 600)
    shared = [
        Prefix(0x0A000000, 16),  # cover
        Prefix(0x0A000100, 24),
        Prefix(0x0A000200, 24),
    ]
    for prefix in shared:
        table.add(prefix, best, [alt])
    table.add(Prefix(0x0A000300, 24), best_div, [alt_div])  # divergent child
    table.add(Prefix(0x0A000380, 25), best_div, [alt_div])  # inherits divergent
    table.add(Prefix(0x0B000000, 16), best, [alt])  # unrelated flat
    return table


def _compute(table, computer=None):
    computer = computer or BackupComputer()
    grouped = computer.compute_table(
        _LOCAL_AS, table.best, table.alternates_of, table.candidates_of
    )
    aggregated = computer.compute_table_aggregated(
        _LOCAL_AS, table.best, table.alternates_of, table.candidates_of
    )
    return computer, grouped, aggregated


class TestCoveringAggregation:
    def test_same_profile_children_collapse_into_cover(self):
        table = _nested_table()
        _, grouped, aggregated = _compute(table)
        stored = dict(aggregated.items())
        # cover + divergent child + unrelated flat; the same-profile /24s
        # and the grandchild under the divergent /24 are elided.
        assert sorted(stored) == [
            Prefix(0x0A000000, 16),
            Prefix(0x0A000300, 24),
            Prefix(0x0B000000, 16),
        ]
        assert aggregated.protected_prefix_count == 6
        assert aggregated.source_entry_count == sum(
            len(per_link) for per_link in grouped.values()
        )
        assert aggregated.reduction() == 2.0  # 6 prefixes -> 3 entries

    def test_every_protected_prefix_resolves_exactly(self):
        table = _nested_table()
        _, grouped, aggregated = _compute(table)
        for prefix in table.best:
            assert aggregated.selections_for(prefix) == grouped[prefix]
            for link, selection in aggregated.selections_for(prefix).items():
                assert selection.prefix == prefix
                assert selection.protected_link == link
                assert aggregated.backup_for(prefix, link) == selection

    def test_unprotected_prefix_returns_nothing(self):
        table = _nested_table()
        _, _, aggregated = _compute(table)
        outside = Prefix(0x0C000000, 24)
        assert aggregated.selections_for(outside) == {}
        assert aggregated.backup_for(outside, (_LOCAL_AS, 65001)) is None
        # A more-specific under the cover *does* resolve (LPM semantics):
        # queries are only asked for protected prefixes in practice, and
        # any query under the cover inherits its template.
        assert aggregated.lookup(Prefix(0x0A00FF00, 24)) is not None

    def test_expansion_is_byte_identical_to_reference(self):
        table = _nested_table()
        computer, _, aggregated = _compute(table)
        reference = computer.compute_table_reference(
            _LOCAL_AS, table.best, table.alternates_of
        )
        assert pickle.dumps(aggregated.expand(table.best)) == pickle.dumps(reference)


class TestBoundaryMarkers:
    def test_backupless_child_is_stored_as_empty_marker(self):
        table = _Table()
        best = _attrs(65001, 200, 300)
        alt = _attrs(65002, 400, 300)
        table.add(Prefix(0x0A000000, 16), best, [alt])
        # The child's only route is the best one: no alternates, no valid
        # backup for any link — and a different profile than the cover.
        table.add(Prefix(0x0A000100, 24), best, [])
        # Grandchild shares the *child's* profile, so it is elided onto the
        # empty marker, not onto the cover.
        table.add(Prefix(0x0A000180, 25), best, [])
        _, grouped, aggregated = _compute(table)
        assert grouped.get(Prefix(0x0A000100, 24)) is None
        stored = dict(aggregated.items())
        assert stored[Prefix(0x0A000100, 24)] == {}
        assert Prefix(0x0A000180, 25) not in stored
        # The marker stops the grandchild from inheriting the cover's
        # backups it must not have.
        assert aggregated.selections_for(Prefix(0x0A000180, 25)) == {}
        assert aggregated.selections_for(Prefix(0x0A000000, 16)) != {}

    def test_marker_counts_do_not_inflate_reduction(self):
        table = _Table()
        best = _attrs(65001, 200, 300)
        table.add(Prefix(0x0A000000, 16), best, [])
        _, _, aggregated = _compute(table)
        assert aggregated.entry_count == 0
        assert aggregated.source_entry_count == 0
        assert aggregated.reduction() == 1.0


class TestCapacityFallback:
    def test_capacity_limited_policy_stores_exact_reference(self):
        table = _nested_table()
        policy = ReroutingPolicy(capacity_limits={65002: 3})
        computer = BackupComputer(policy=policy)
        computer2, _, aggregated = _compute(table, computer)
        assert computer2 is computer
        reference = computer.compute_table_reference(
            _LOCAL_AS, table.best, table.alternates_of
        )
        # Exact per-prefix storage: every protected prefix is its own key.
        assert aggregated.aggregated_prefix_count == len(table.best)
        for prefix in table.best:
            assert aggregated.selections_for(prefix) == reference.get(prefix, {})
        assert pickle.dumps(aggregated.expand(table.best)) == pickle.dumps(reference)


class TestAggregatedTableBasics:
    def test_empty_table(self):
        aggregated = AggregatedBackupTable({}, 0, 0)
        assert len(aggregated) == 0
        assert aggregated.reduction() == 1.0
        assert aggregated.selections_for(Prefix(0x0A000000, 8)) == {}
