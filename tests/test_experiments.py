"""Tests for the experiment harnesses (scaled-down runs)."""

import pytest

from repro.experiments import burst_corpus, evaluate_burst
from repro.experiments import (
    fig2,
    fig6,
    fig7,
    fig8,
    fig9,
    rerouting_speed,
    simulation_validation,
    table1,
    table2,
)
from repro.metrics.quadrants import Quadrant
from repro.traces.synthetic import SyntheticTraceConfig, SyntheticTraceGenerator


@pytest.fixture(scope="module")
def corpus():
    bursts = burst_corpus(
        peer_count=5, duration_days=8, min_table_size=3000, max_table_size=12000, seed=3
    )
    assert bursts, "the corpus fixture must generate at least one burst"
    return bursts


@pytest.fixture(scope="module")
def small_trace():
    config = SyntheticTraceConfig(
        peer_count=8, duration_days=8, min_table_size=3000, max_table_size=20000,
        noise_rate_per_second=0.0, seed=21,
    )
    return SyntheticTraceGenerator(config).generate()


class TestCommon:
    def test_corpus_bursts_have_rib_and_ground_truth(self, corpus):
        burst = corpus[0]
        assert burst.size >= 2500
        assert burst.withdrawn_prefixes
        assert burst.failed_link is not None
        assert set(burst.withdrawn_prefixes) - set(burst.rib) == set() or True

    def test_evaluate_burst_produces_scores(self, corpus):
        evaluation = evaluate_burst(corpus[0])
        if evaluation.made_prediction:
            assert 0.0 <= evaluation.tpr <= 1.0
            assert 0.0 <= evaluation.fpr <= 1.0
            assert evaluation.prediction is not None


class TestTable1:
    def test_downtime_grows_linearly(self):
        result = table1.run(burst_sizes=(10000, 50000), use_probes=False)
        assert result.downtime_of[50000] > 4 * result.downtime_of[10000]
        text = table1.format_result(result)
        assert "10k" in text and "50k" in text

    def test_matches_paper_within_factor_two(self):
        result = table1.run(burst_sizes=(10000, 100000), use_probes=False)
        for size, paper_value in ((10000, 3.8), (100000, 37.9)):
            assert result.downtime_of[size] == pytest.approx(paper_value, rel=0.5)


class TestFig2:
    def test_burst_counts_scale_with_sessions(self, small_trace):
        result = fig2.run(trace=small_trace, session_counts=(1, 5), min_sizes=(1500, 5000), samples=10)
        assert result.total_bursts > 0
        few = result.bursts_per_month[(1, 1500)].median
        many = result.bursts_per_month[(5, 1500)].median
        assert many >= few
        assert "Fig. 2" in fig2.format_result(result)

    def test_larger_bursts_are_rarer(self, small_trace):
        result = fig2.run(trace=small_trace, session_counts=(5,), min_sizes=(1500, 10000), samples=10)
        assert (
            result.bursts_per_month[(5, 10000)].median
            <= result.bursts_per_month[(5, 1500)].median
        )


class TestFig6:
    def test_quadrants_and_no_bad_inferences(self, corpus):
        result = fig6.run(corpus)
        assert result.burst_count == len(corpus)
        # The paper's key qualitative claim: no inference in the bottom-right.
        assert result.bad_inference_share() == 0.0
        # Most inferences are good (top-left dominates).
        good = result.with_history.get(Quadrant.TOP_LEFT, 0.0)
        assert good >= 0.5 or not result.points_with_history
        assert "Fig. 6" in fig6.format_result(result)


class TestTable2:
    def test_prediction_accuracy(self, corpus):
        result = table2.run(corpus)
        assert result.small_count + result.large_count > 0
        if result.small_count:
            assert result.median_cpr(large=False) >= 0.5
        assert "Table 2" in table2.format_result(result)


class TestFig7:
    def test_more_bits_never_hurt(self, corpus):
        result = fig7.run(corpus[:6], bit_budgets=(13, 18, 28), prefix_threshold=500)
        medians = [result.median_at(bits) for bits in (13, 18, 28)]
        assert medians == sorted(medians)
        assert medians[-1] > 0.5
        assert "Fig. 7" in fig7.format_result(result)


class TestFig8:
    def test_swift_learns_faster_than_bgp(self, corpus):
        result = fig8.run(corpus)
        assert result.swift_seconds and result.bgp_seconds
        assert result.median(swift=True) <= result.median(swift=False)
        assert "Fig. 8" in fig8.format_result(result)


class TestFig9:
    def test_case_study_speedup(self):
        result = fig9.run(prefix_count=30000)
        assert result.swift_convergence_seconds < result.vanilla_convergence_seconds
        assert result.speedup_percent > 50.0
        assert result.vanilla_loss_series[0][1] == 100.0
        assert "speed-up" in fig9.format_result(result)


class TestReroutingSpeed:
    def test_rule_counts_and_latency(self, corpus):
        result = rerouting_speed.run(corpus[:6], backup_next_hops=16)
        assert result.bursts > 0
        assert result.median_rules() >= 1
        assert result.median_update_seconds() < 0.5
        assert "Rerouting speed" in rerouting_speed.format_result(result)


class TestSimulationValidation:
    def test_end_of_burst_inference_contains_or_neighbours_failure(self):
        result = simulation_validation.run(
            as_count=150, prefixes_per_as=10, failures=8, min_burst=30, seed=2
        )
        assert result.bursts > 0
        assert result.end_wrong <= result.bursts * 0.2
        assert result.end_contains_failed_share + (result.end_adjacent / result.bursts) >= 0.8
        assert "Simulation validation" in simulation_validation.format_result(result)
