"""Tests for repro.bgp.prefix."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.bgp.prefix import (
    Prefix,
    PrefixError,
    parse_prefix,
    prefix_block,
    random_addresses,
    summarize_prefixes,
)


class TestPrefixParsing:
    def test_parse_simple(self):
        prefix = Prefix.from_string("203.0.113.0/24")
        assert prefix.length == 24
        assert str(prefix) == "203.0.113.0/24"

    def test_parse_bare_address_is_host_route(self):
        assert Prefix.from_string("10.0.0.1").length == 32

    def test_parse_helper(self):
        assert parse_prefix("10.0.0.0/8") == Prefix(10 << 24, 8)

    def test_host_bits_are_masked(self):
        assert str(Prefix.from_string("10.0.0.255/24")) == "10.0.0.0/24"

    @pytest.mark.parametrize(
        "bad", ["10.0.0/24", "10.0.0.256/24", "10.0.0.0/33", "10.0.0.0/x", "a.b.c.d/8"]
    )
    def test_invalid_strings_raise(self, bad):
        with pytest.raises(PrefixError):
            Prefix.from_string(bad)

    def test_invalid_length_raises(self):
        with pytest.raises(PrefixError):
            Prefix(0, 40)


class TestPrefixProperties:
    def test_ordering_and_hash(self):
        a = Prefix.from_string("10.0.0.0/24")
        b = Prefix.from_string("10.0.1.0/24")
        assert a < b
        assert len({a, b, Prefix.from_string("10.0.0.0/24")}) == 2

    def test_containment(self):
        supernet = Prefix.from_string("10.0.0.0/16")
        subnet = Prefix.from_string("10.0.5.0/24")
        assert supernet.contains(subnet)
        assert not subnet.contains(supernet)
        assert supernet.contains_address(subnet.network)

    def test_supernet_and_subnets_roundtrip(self):
        prefix = Prefix.from_string("192.0.2.0/24")
        low, high = prefix.subnets()
        assert low.supernet() == prefix
        assert high.supernet() == prefix
        assert low.num_addresses + high.num_addresses == prefix.num_addresses

    def test_default_route_has_no_supernet(self):
        with pytest.raises(PrefixError):
            Prefix(0, 0).supernet()

    def test_host_route_cannot_be_split(self):
        with pytest.raises(PrefixError):
            Prefix.from_string("10.0.0.1/32").subnets()

    def test_bits_representation(self):
        assert Prefix.from_string("128.0.0.0/1").bits() == "1"
        assert Prefix.from_string("192.0.0.0/2").bits() == "11"
        assert Prefix(0, 0).bits() == ""

    def test_address_range(self):
        prefix = Prefix.from_string("10.0.0.0/30")
        assert prefix.last_address - prefix.first_address == 3


class TestPrefixBlock:
    def test_block_is_consecutive_and_distinct(self):
        block = prefix_block("10.0.0.0/24", 100)
        assert len(set(block)) == 100
        assert block[1].network - block[0].network == 256

    def test_block_length_mismatch_raises(self):
        with pytest.raises(PrefixError):
            prefix_block("10.0.0.0/16", 4, length=24)

    def test_random_addresses_fall_inside_prefixes(self):
        block = prefix_block("10.0.0.0/24", 10)
        rng = random.Random(1)
        addresses = random_addresses(block, 50, rng)
        assert len(addresses) == 50
        assert all(any(p.contains_address(a) for p in block) for a in addresses)

    def test_random_addresses_empty_pool_raises(self):
        with pytest.raises(PrefixError):
            random_addresses([], 1, random.Random(0))


class TestSummarize:
    def test_adjacent_siblings_merge(self):
        pair = [Prefix.from_string("10.0.0.0/25"), Prefix.from_string("10.0.0.128/25")]
        assert summarize_prefixes(pair) == [Prefix.from_string("10.0.0.0/24")]

    def test_non_siblings_do_not_merge(self):
        pair = [Prefix.from_string("10.0.0.128/25"), Prefix.from_string("10.0.1.0/25")]
        assert len(summarize_prefixes(pair)) == 2

    @given(st.integers(min_value=0, max_value=2**32 - 256), st.integers(8, 28))
    def test_summarize_preserves_address_count(self, base, length):
        prefix = Prefix(base, length)
        low, high = prefix.subnets()
        merged = summarize_prefixes([low, high])
        assert sum(p.num_addresses for p in merged) == prefix.num_addresses


class TestPrefixHypothesis:
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 32))
    def test_roundtrip_string(self, network, length):
        prefix = Prefix(network, length)
        assert Prefix.from_string(str(prefix)) == prefix

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(1, 32))
    def test_supernet_contains_child(self, network, length):
        prefix = Prefix(network, length)
        assert prefix.supernet().contains(prefix)
