"""Smoke-test every example script with tiny arguments.

The examples double as living documentation of the public API; this suite
runs each one in a subprocess — tiny inputs, private trace cache — so that
API drift breaks the tier-1 build instead of rotting silently.  Only the
exit status and the absence of a traceback are asserted: the examples own
their narratives, the build owns their executability.
"""

import os
import subprocess
import sys

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_EXAMPLES = os.path.join(_REPO_ROOT, "examples")

#: script -> tiny argv (every example accepts scale arguments precisely so
#: this suite can run it in seconds).
_TINY_ARGS = {
    "quickstart.py": ["600"],
    "case_study_speedup.py": ["2000"],
    "simulated_outage.py": ["80"],
    "trace_analysis.py": ["2", "2"],
    "fleet_replay.py": ["2", "0.5", "400"],
    "full_table.py": ["4000", "2"],
    "live_daemon.py": ["0.05", "40"],
}


def test_every_example_has_tiny_arguments():
    """A new example must be registered here (with args that keep it tiny)."""
    scripts = sorted(
        name for name in os.listdir(_EXAMPLES) if name.endswith(".py")
    )
    assert scripts == sorted(_TINY_ARGS)


@pytest.mark.parametrize("script", sorted(_TINY_ARGS))
def test_example_runs_clean(script, tmp_path):
    env = dict(os.environ)
    # Examples do `sys.path.insert(0, "src")`, so run from the repo root;
    # a private cache keeps smoke runs from touching the shared one.
    env["REPRO_TRACE_CACHE"] = str(tmp_path / "cache")
    completed = subprocess.run(
        [sys.executable, os.path.join("examples", script), *_TINY_ARGS[script]],
        cwd=_REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, (
        f"{script} exited {completed.returncode}:\n{completed.stderr[-2000:]}"
    )
    assert "Traceback" not in completed.stderr
    assert completed.stdout.strip(), f"{script} printed nothing"
