"""Tests for the AS topology substrate and the propagation simulator."""

import pytest

from repro.bgp.prefix import Prefix
from repro.simulation import (
    GaoRexfordRouting,
    LinkFailure,
    NodeFailure,
    NoiseConfig,
    PropagationSimulator,
    VantagePoint,
    inject_noise,
)
from repro.simulation.timing import EmpiricalPacing, UniformPacing
from repro.topology.as_graph import ASGraph, Relationship
from repro.topology.generator import TopologyConfig, fig1_topology, generate_topology
from repro.topology.policies import is_valley_free, valley_free_export
from repro.topology.tiers import assign_tiers


class TestASGraph:
    def test_build_and_query(self):
        graph = ASGraph()
        graph.add_customer_provider(customer=1, provider=2)
        graph.add_peering(2, 3)
        assert graph.has_link(2, 1)
        assert graph.link(1, 2).relationship_from(1) == "provider"
        assert graph.link(1, 2).relationship_from(2) == "customer"
        assert graph.link(2, 3).relationship_from(2) == "peer"
        assert graph.providers_of(1) == [2]
        assert graph.customers_of(2) == [1]
        assert graph.peers_of(2) == [3]

    def test_duplicate_link_rejected(self):
        graph = ASGraph()
        graph.add_peering(1, 2)
        with pytest.raises(ValueError):
            graph.add_peering(2, 1)

    def test_remove_and_restore_link(self):
        graph = ASGraph()
        link = graph.add_peering(1, 2)
        graph.remove_link(1, 2)
        assert not graph.has_link(1, 2)
        graph.restore_link(link)
        assert graph.has_link(1, 2)

    def test_connectivity_and_degree(self):
        graph = ASGraph()
        graph.add_peering(1, 2)
        graph.add_peering(2, 3)
        assert graph.is_connected()
        assert graph.degree(2) == 2
        graph.add_as(99)
        assert not graph.is_connected()

    def test_prefix_origin_map(self):
        graph = ASGraph()
        prefix = Prefix.from_string("10.0.0.0/24")
        graph.add_as(6, [prefix])
        assert graph.prefix_origin_map() == {prefix: 6}
        assert graph.origin_of(prefix) == 6


class TestPolicies:
    def test_valley_free_export_rules(self):
        assert valley_free_export("customer", "provider")
        assert valley_free_export("origin", "peer")
        assert not valley_free_export("peer", "peer")
        assert not valley_free_export("provider", "provider")
        assert valley_free_export("provider", "customer")

    def test_is_valley_free_on_fig1(self):
        graph = fig1_topology({})
        # Path 1 -> 2 -> 5 -> 6 is customer->provider all the way up: valid.
        assert is_valley_free(graph, [2, 5, 6])
        # A path that goes down then up again is a valley.
        graph2 = ASGraph()
        graph2.add_customer_provider(customer=2, provider=1)
        graph2.add_customer_provider(customer=2, provider=3)
        assert not is_valley_free(graph2, [1, 2, 3])


class TestTiers:
    def test_fig1_style_tiering(self):
        adjacency = {1: [2, 3], 2: [1, 3, 4], 3: [1, 2, 5], 4: [2], 5: [3]}
        tiers = assign_tiers(adjacency, tier1_count=2)
        assert tiers[2] == 1 and tiers[3] == 1
        assert tiers[1] == 2 and tiers[4] == 2 and tiers[5] == 2

    def test_empty(self):
        assert assign_tiers({}) == {}


class TestGenerator:
    def test_generated_topology_properties(self):
        config = TopologyConfig(as_count=200, prefixes_per_as=3, seed=1)
        graph = generate_topology(config)
        assert graph.as_count == 200
        assert graph.is_connected()
        assert graph.total_prefix_count() == 600
        assert 3.0 < graph.average_degree < 14.0
        tiers = {node.tier for node in graph.nodes()}
        assert 1 in tiers and len(tiers) >= 2

    def test_determinism(self):
        config = TopologyConfig(as_count=100, prefixes_per_as=2, seed=9)
        first = generate_topology(config)
        second = generate_topology(config)
        assert first.link_keys() == second.link_keys()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TopologyConfig(as_count=1)


class TestRouting:
    def test_fig1_routing_respects_policies(self):
        graph = fig1_topology({6: 5, 7: 5, 8: 2})
        routing = GaoRexfordRouting(graph).compute(origin=6)
        # AS 1 reaches AS 6 (it buys transit from 2, 3 and 4).
        assert routing.has_route(1)
        path_of_1 = routing.path_of(1)
        assert path_of_1[-1] == 6
        # AS 2's path to 6 goes through its provider 5.
        assert routing.path_of(2) == (5, 6)
        # Exported path from 2 to 1 exists (1 is 2's customer).
        assert routing.exported_path(graph, 2, 1) == (2, 5, 6)
        # 2 does not export its provider route to its peer 3.
        assert routing.exported_path(graph, 2, 3) is None

    def test_paths_are_valley_free(self):
        graph = generate_topology(TopologyConfig(as_count=120, prefixes_per_as=1, seed=4))
        origin = graph.ases()[10]
        routing = GaoRexfordRouting(graph).compute(origin)
        for asn in list(routing.best_path)[:50]:
            path = (asn,) + routing.best_path[asn]
            assert is_valley_free(graph, list(path)), path


class TestEvents:
    def test_link_failure_apply_undo(self):
        graph = fig1_topology({})
        failure = LinkFailure(a=5, b=6)
        removed = failure.apply(graph)
        assert not graph.has_link(5, 6)
        failure.undo(graph, removed)
        assert graph.has_link(5, 6)

    def test_node_failure_removes_all_adjacent_links(self):
        graph = fig1_topology({})
        failure = NodeFailure(asn=6)
        assert set(failure.failed_links(graph)) >= {(5, 6), (6, 7), (6, 8)}

    def test_invalid_events(self):
        with pytest.raises(ValueError):
            LinkFailure(a=1, b=1)
        with pytest.raises(ValueError):
            NodeFailure(asn=0)


class TestPacing:
    def test_uniform_pacing(self):
        import random

        offsets = UniformPacing(rate_per_second=100).offsets(10, random.Random(0))
        assert offsets[1] - offsets[0] == pytest.approx(0.01)

    def test_empirical_pacing_sorted_and_bounded(self):
        import random

        pacing = EmpiricalPacing()
        offsets = pacing.offsets(500, random.Random(1))
        assert offsets == sorted(offsets)
        assert offsets[-1] <= pacing.duration_for(500)

    def test_invalid_pacing_params(self):
        with pytest.raises(ValueError):
            UniformPacing(rate_per_second=0)
        with pytest.raises(ValueError):
            EmpiricalPacing(head_skew=0.5)


class TestPropagationSimulator:
    def test_fig1_failure_burst(self):
        graph = fig1_topology({6: 50, 7: 50, 8: 10, 2: 5, 5: 5, 3: 5})
        simulator = PropagationSimulator(graph, seed=1)
        vantage = VantagePoint(local_as=1, peer_as=2)
        rib = simulator.vantage_rib(vantage)
        assert len(rib) > 100
        burst = simulator.simulate(LinkFailure(a=5, b=6), vantage)
        # Everything AS 2 reached through (5, 6) is withdrawn.
        assert burst.withdrawal_count >= 110
        assert burst.ground_truth.failed_links == ((5, 6),)
        assert burst.ground_truth.withdrawn_prefixes
        # The graph is restored after the simulation.
        assert graph.has_link(5, 6)

    def test_burst_session_preloads_rib(self):
        graph = fig1_topology({6: 20, 7: 10, 8: 5})
        simulator = PropagationSimulator(graph, seed=1)
        vantage = VantagePoint(local_as=1, peer_as=2)
        burst = simulator.simulate(LinkFailure(a=5, b=6), vantage)
        session = burst.build_session()
        assert len(session.rib_in) == len(burst.initial_rib)

    def test_candidate_failures_ranked(self):
        graph = fig1_topology({6: 50, 7: 50, 8: 10})
        simulator = PropagationSimulator(graph, seed=1)
        vantage = VantagePoint(local_as=1, peer_as=2)
        candidates = simulator.candidate_link_failures(vantage, min_withdrawals=20)
        assert candidates
        assert (5, 6) in candidates

    def test_vantage_requires_link(self):
        graph = fig1_topology({})
        simulator = PropagationSimulator(graph)
        with pytest.raises(ValueError):
            simulator.vantage_rib(VantagePoint(local_as=1, peer_as=8))


class TestNoise:
    def test_inject_noise_adds_withdrawals(self):
        graph = fig1_topology({6: 20, 7: 10, 8: 5, 2: 10})
        simulator = PropagationSimulator(graph, seed=1)
        vantage = VantagePoint(local_as=1, peer_as=2)
        burst = simulator.simulate(LinkFailure(a=5, b=6), vantage)
        unaffected = [
            p for p in burst.initial_rib
            if p not in burst.ground_truth.affected_prefixes
        ]
        noisy = inject_noise(
            burst.messages, unaffected, 2, NoiseConfig(burst_noise_withdrawals=5, seed=1)
        )
        extra = len(noisy) - len(burst.messages)
        assert extra == min(5, len(unaffected))
        assert [m.timestamp for m in noisy] == sorted(m.timestamp for m in noisy)

    def test_noise_config_validation(self):
        with pytest.raises(ValueError):
            NoiseConfig(burst_noise_withdrawals=-1)
