"""Tests for the prefix trie, AS paths and path attributes."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.attributes import ASPath, Community, Origin, PathAttributes
from repro.bgp.prefix import Prefix, prefix_block
from repro.bgp.trie import PrefixTrie


class TestPrefixTrie:
    def test_insert_get_remove(self):
        trie = PrefixTrie()
        prefix = Prefix.from_string("10.0.0.0/24")
        trie.insert(prefix, "a")
        assert trie[prefix] == "a"
        assert prefix in trie
        assert trie.remove(prefix) == "a"
        assert prefix not in trie
        assert len(trie) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            PrefixTrie().remove(Prefix.from_string("10.0.0.0/24"))

    def test_longest_prefix_match(self):
        trie = PrefixTrie()
        trie.insert(Prefix.from_string("10.0.0.0/8"), "short")
        trie.insert(Prefix.from_string("10.1.0.0/16"), "long")
        match = trie.lookup(Prefix.from_string("10.1.2.3/32").network)
        assert match is not None and match[1] == "long"
        match = trie.lookup(Prefix.from_string("10.2.2.3/32").network)
        assert match is not None and match[1] == "short"
        assert trie.lookup(Prefix.from_string("11.0.0.1/32").network) is None

    def test_covered_by(self):
        trie = PrefixTrie()
        for text in ("10.0.0.0/24", "10.0.1.0/24", "11.0.0.0/24"):
            trie.insert(Prefix.from_string(text), text)
        covered = dict(trie.covered_by(Prefix.from_string("10.0.0.0/16")))
        assert len(covered) == 2

    def test_iteration_sorted(self):
        trie = PrefixTrie()
        block = prefix_block("10.0.0.0/24", 20)
        for index, prefix in enumerate(reversed(block)):
            trie.insert(prefix, index)
        assert list(trie.keys()) == sorted(block)

    @given(st.sets(st.integers(0, 2**24 - 1), min_size=1, max_size=40))
    def test_lpm_agrees_with_bruteforce(self, networks):
        trie = PrefixTrie()
        prefixes = [Prefix(network << 8, 24) for network in networks]
        for prefix in prefixes:
            trie.insert(prefix, prefix)
        probe = prefixes[0].network + 5
        match = trie.lookup(probe)
        expected = [p for p in prefixes if p.contains_address(probe)]
        assert match is not None and match[0] in expected


class TestASPath:
    def test_links_and_positions(self):
        path = ASPath([2, 5, 6, 8])
        assert path.links() == ((2, 5), (5, 6), (6, 8))
        assert path.links_with_positions()[0] == ((2, 5), 1)
        assert path.origin_as == 8
        assert path.first_hop == 2

    def test_traverses(self):
        path = ASPath([2, 5, 6])
        assert path.traverses((6, 5))
        assert not path.traverses((2, 6))
        assert path.traverses_as(5)

    def test_loop_detection_and_prepend(self):
        assert not ASPath([1, 2, 3]).has_loop()
        assert ASPath([1, 2, 1]).has_loop()
        assert ASPath([2, 3]).prepend(2).asns == (2, 2, 3)

    def test_from_string_and_str_roundtrip(self):
        path = ASPath.from_string("2 5 6")
        assert str(path) == "2 5 6"
        assert len(path) == 3

    def test_invalid_asn_raises(self):
        with pytest.raises(ValueError):
            ASPath([0, 1])

    def test_truncate(self):
        assert ASPath([1, 2, 3, 4]).truncate(2).asns == (1, 2, 3)

    @given(st.lists(st.integers(1, 2**16), min_size=2, max_size=10))
    def test_link_count_is_length_minus_one(self, asns):
        path = ASPath(asns)
        assert len(path.directed_links()) == len(asns) - 1


class TestAttributes:
    def test_community_parse_and_validate(self):
        community = Community.from_string("65000:100")
        assert str(community) == "65000:100"
        with pytest.raises(ValueError):
            Community(70000, 1)
        with pytest.raises(ValueError):
            Community.from_string("bad")

    def test_path_attributes_validation(self):
        attributes = PathAttributes(as_path=ASPath([2, 6]), next_hop=2)
        assert attributes.local_pref == 100
        assert attributes.origin == Origin.IGP
        with pytest.raises(ValueError):
            PathAttributes(as_path=ASPath([2]), next_hop=2, local_pref=-1)

    def test_with_modifiers(self):
        attributes = PathAttributes(as_path=ASPath([2, 6]), next_hop=2)
        assert attributes.with_local_pref(300).local_pref == 300
        updated = attributes.with_communities([Community(65000, 1)])
        assert Community(65000, 1) in updated.communities
