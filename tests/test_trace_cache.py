"""Trace-cache regressions: fingerprint safety and temp-file hygiene.

Two silent failure modes are pinned down here:

* ``fingerprint`` falling back to a default ``repr`` that embeds the
  object's memory address would mint a different cache key every process —
  a permanent miss that regenerates minutes-long traces while looking like
  a working cache.  Such configurations must fail loudly instead.
* an interrupted cache writer (``KeyboardInterrupt`` mid-``pickle.dump``,
  a builder/encoder crash, an unlink that itself fails) used to orphan
  ``.tmp`` files in ``.trace_cache/`` forever; writes now clean up on any
  exception and both the write path and ``clear_cache`` sweep stale
  leftovers.
"""

import os
import pickle
import time

import pytest

from repro.traces import trace_cache
from repro.traces.trace_cache import (
    cache_path_for,
    clear_cache,
    fingerprint,
    load_or_build,
)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    directory = tmp_path / "cache"
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(directory))
    return directory


class _Opaque:
    """A config field with the default (address-bearing) repr."""


class _Deterministic:
    """A config field whose repr is stable across processes."""

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"_Deterministic({self.value!r})"


class TestFingerprint:
    def test_address_bearing_repr_raises_instead_of_thrashing(self):
        with pytest.raises(TypeError, match="memory address"):
            fingerprint(_Opaque())

    def test_address_bearing_repr_nested_in_config_raises(self):
        with pytest.raises(TypeError, match="memory address"):
            fingerprint({"detector": _Opaque()})
        with pytest.raises(TypeError, match="memory address"):
            fingerprint([1, (_Opaque(),)])

    def test_function_repr_raises(self):
        with pytest.raises(TypeError, match="memory address"):
            fingerprint(lambda: None)

    def test_deterministic_custom_repr_is_allowed(self):
        assert fingerprint(_Deterministic(7)) == "_Deterministic(7)"

    def test_string_containing_address_text_is_not_rejected(self):
        # Only the repr fallback is screened; user strings are data.
        assert fingerprint("<built at 0xdeadbeef>") == repr("<built at 0xdeadbeef>")

    def test_mixed_type_dict_keys_do_not_raise(self):
        # sorted() over {1, "a"} raises TypeError; fingerprint must not.
        rendered = fingerprint({1: "x", "a": 2, (3, 4): None})
        assert fingerprint({"a": 2, (3, 4): None, 1: "x"}) == rendered

    def test_mixed_type_sets_do_not_raise(self):
        assert fingerprint({1, "a"}) == fingerprint({"a", 1})

    def test_config_with_opaque_field_fails_loudly_not_silently(self, cache_dir):
        """The regression scenario: a config holding an address-repr object."""
        calls = []

        def build():
            calls.append(1)
            return "value"

        with pytest.raises(TypeError, match="memory address"):
            load_or_build("trace", fingerprint({"cfg": _Opaque()}), build)
        assert not calls, "the builder must not run for an unfingerprintable config"


class _ExplodesMidPickle:
    """Pickling this object raises after the dump has started writing."""

    def __reduce__(self):
        raise RuntimeError("interrupted mid-write")


class TestTempFileHygiene:
    def _tmp_files(self, cache_dir):
        if not cache_dir.is_dir():
            return []
        return [name for name in os.listdir(cache_dir) if name.endswith(".tmp")]

    def test_failed_write_leaves_no_tmp_file(self, cache_dir):
        value = load_or_build("kind", "spec", lambda: _ExplodesMidPickle())
        assert isinstance(value, _ExplodesMidPickle)  # building still succeeds
        assert self._tmp_files(cache_dir) == []

    def test_failed_write_after_successful_one_keeps_good_entry(self, cache_dir):
        load_or_build("kind", "good", lambda: 41)
        load_or_build("kind", "bad", lambda: _ExplodesMidPickle())
        assert self._tmp_files(cache_dir) == []
        assert load_or_build("kind", "good", lambda: pytest.fail("cache miss")) == 41

    def test_interrupt_mid_write_cleans_up(self, cache_dir, monkeypatch):
        """KeyboardInterrupt escapes load_or_build but not before cleanup."""

        def explode(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(trace_cache.pickle, "dump", explode)
        with pytest.raises(KeyboardInterrupt):
            load_or_build("kind", "spec", lambda: 1)
        assert self._tmp_files(cache_dir) == []

    def test_write_path_sweeps_stale_tmp_litter(self, cache_dir):
        cache_dir.mkdir(parents=True)
        stale = cache_dir / "orphan-123.tmp"
        stale.write_bytes(b"leftover")
        ancient = time.time() - 7200
        os.utime(stale, (ancient, ancient))
        fresh = cache_dir / "live-writer.tmp"
        fresh.write_bytes(b"in flight")

        load_or_build("kind", "spec", lambda: 1)

        assert not stale.exists(), "hour-old orphans are swept on the next write"
        assert fresh.exists(), "young temp files may belong to a live writer"

    def test_clear_cache_removes_tmp_and_cols_files(self, cache_dir):
        cache_dir.mkdir(parents=True)
        (cache_dir / "orphan.tmp").write_bytes(b"x")
        (cache_dir / "entry.pkl").write_bytes(b"x")
        (cache_dir / "entry.cols").write_bytes(b"x")
        assert clear_cache() == 3
        assert os.listdir(cache_dir) == []


class TestCachePaths:
    def test_suffix_selects_storage_layout(self, cache_dir):
        pkl = cache_path_for("stream", "spec", format_version=1)
        cols = cache_path_for("stream", "spec", format_version=1, suffix=".cols")
        assert pkl.endswith(".pkl") and cols.endswith(".cols")
        assert os.path.splitext(pkl)[0] == os.path.splitext(cols)[0]

    def test_roundtrip_through_pickle_layout(self, cache_dir):
        assert load_or_build("k", "s", lambda: {"a": 1}) == {"a": 1}
        assert load_or_build("k", "s", lambda: pytest.fail("miss")) == {"a": 1}
