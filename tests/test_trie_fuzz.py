"""Randomized parity fuzz: compressed trie vs per-bit reference vs brute force.

The path-compressed :class:`~repro.bgp.trie.PrefixTrie` earns its structural
cleverness only if it is indistinguishable from the obviously-correct
implementations.  Each trial drives three models through one random
interleaving of inserts, overwrites, removes and re-inserts, checking after
every batch that

* exact queries (``in``, ``get``, ``len``, sorted iteration) match a dict,
* LPM lookups match both the per-bit reference trie and a brute-force
  "scan every stored prefix, keep the longest match" oracle,
* ``lookup_prefix`` / ``covering_entry`` / ``covered_by`` match the
  reference (and brute force), including the default route and deeply
  nested single-branch chains, and
* a fresh ``build_from_sorted`` of the surviving entries is structurally
  indistinguishable from the incrementally-built trie.

The ``parity-pair`` static-analysis rule pins the two classes' public
surfaces together; this suite pins their behaviour.
"""

import random

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.trie import PrefixTrie
from repro.bgp.trie_reference import ReferencePrefixTrie

_TRIALS = 8
_BATCHES = 6
_OPS_PER_BATCH = 60


def _random_prefix(rng):
    # Skewed toward short masks so nesting and covering relations are common.
    length = rng.choice((0, 4, 8, 8, 12, 16, 16, 20, 24, 24, 28, 32))
    network = rng.getrandbits(32) & (0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF)
    return Prefix(network, length)


def _covers(prefix, address):
    length = prefix.length
    if length == 0:
        return True
    return (address ^ prefix.network) >> (32 - length) == 0


def _brute_lookup(model, address):
    best = None
    for prefix, value in model.items():
        if _covers(prefix, address):
            if best is None or prefix.length > best[0].length:
                best = (prefix, value)
    return best


def _brute_covering(model, prefix):
    best = None
    for stored, value in model.items():
        if stored.length <= prefix.length and _covers(stored, prefix.network):
            if best is None or stored.length > best[0].length:
                best = (stored, value)
    return best


def _check_parity(rng, compressed, reference, model):
    assert len(compressed) == len(reference) == len(model)
    assert list(compressed.items()) == sorted(model.items())
    assert list(compressed.items()) == list(reference.items())

    probes = [_random_prefix(rng) for _ in range(25)] + list(model)[:25]
    for probe in probes:
        assert (probe in compressed) == (probe in model)
        assert compressed.get(probe, -1) == model.get(probe, -1)
        address = probe.network | rng.getrandbits(32 - probe.length) if probe.length < 32 else probe.network
        got = compressed.lookup(address)
        assert got == reference.lookup(address)
        assert got == _brute_lookup(model, address)
        covering = compressed.lookup_prefix(probe)
        assert covering == reference.lookup_prefix(probe)
        assert covering == _brute_covering(model, probe)
        assert list(compressed.covered_by(probe)) == list(reference.covered_by(probe))

    # Structural parity of the bulk-load path against incremental inserts.
    rebuilt = PrefixTrie()
    rebuilt.build_from_sorted(sorted(model.items()))
    assert list(rebuilt.items()) == list(compressed.items())
    assert rebuilt.node_count() == compressed.node_count()


@pytest.mark.parametrize("seed", range(_TRIALS))
def test_fuzz_compressed_vs_reference_vs_bruteforce(seed):
    rng = random.Random(0xC0FFEE + seed)
    compressed = PrefixTrie()
    reference = ReferencePrefixTrie()
    model = {}
    removed = []
    counter = 0
    for _ in range(_BATCHES):
        for _ in range(_OPS_PER_BATCH):
            roll = rng.random()
            if roll < 0.55 or not model:
                prefix = _random_prefix(rng)
                counter += 1
                compressed.insert(prefix, counter)
                reference.insert(prefix, counter)
                model[prefix] = counter
            elif roll < 0.80:
                prefix = rng.choice(list(model))
                assert compressed.remove(prefix) == model[prefix]
                assert reference.remove(prefix) == model.pop(prefix)
                removed.append(prefix)
            elif roll < 0.90 and removed:
                # Re-insert a previously removed prefix (fresh value).
                prefix = removed.pop(rng.randrange(len(removed)))
                counter += 1
                compressed[prefix] = counter
                reference[prefix] = counter
                model[prefix] = counter
            else:
                # Remove of an absent prefix must raise in both.
                prefix = _random_prefix(rng)
                if prefix not in model:
                    with pytest.raises(KeyError):
                        compressed.remove(prefix)
                    with pytest.raises(KeyError):
                        reference.remove(prefix)
        _check_parity(rng, compressed, reference, model)


def test_default_route_and_nested_chain_edges():
    compressed = PrefixTrie()
    reference = ReferencePrefixTrie()
    model = {}
    chain = [Prefix(0, 0)] + [
        Prefix(0x0A000000 & ((0xFFFFFFFF << (32 - l)) & 0xFFFFFFFF), l)
        for l in range(1, 33)
    ]
    for value, prefix in enumerate(chain):
        compressed.insert(prefix, value)
        reference.insert(prefix, value)
        model[prefix] = value

    rng = random.Random(99)
    _check_parity(rng, compressed, reference, model)
    # An address inside the chain matches the /32; one outside the deepest
    # branch falls back to the longest still-covering ancestor.
    assert compressed.lookup(0x0A000000)[0] == Prefix(0x0A000000, 32)
    assert compressed.lookup(0x0A000001)[0] == Prefix(0x0A000000, 31)
    assert compressed.lookup(0xFFFFFFFF)[0] == Prefix(0, 0)

    # Tear the chain down from the middle outward; parity must survive the
    # contraction cascades.
    for prefix in chain[15:] + chain[:15]:
        assert compressed.remove(prefix) == reference.remove(prefix) == model.pop(prefix)
        assert list(compressed.items()) == list(reference.items())
    assert len(compressed) == 0 and compressed.node_count() == 1
    assert compressed.lookup(0x0A000000) is None


def test_build_from_sorted_rejects_bad_input():
    ordered = [(Prefix(0x0A000000, 8), 1), (Prefix(0x0B000000, 8), 2)]
    trie = PrefixTrie()
    with pytest.raises(ValueError):
        trie.build_from_sorted(reversed(ordered))
    trie = PrefixTrie()
    with pytest.raises(ValueError):
        trie.build_from_sorted([ordered[0], ordered[0]])
    trie = PrefixTrie()
    trie.build_from_sorted(ordered)
    with pytest.raises(ValueError):
        trie.build_from_sorted(ordered)
