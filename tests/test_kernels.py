"""Kernel-backend parity: stdlib reference vs numpy vectorised kernels.

Every kernel of :mod:`repro.core.kernels` is checked element-for-element
across backends on degenerate column shapes (empty run, single-row run,
all-withdrawal run, repeated identical timestamps, a burst window ending
exactly on the last row) and on randomized fuzz traces sized to cross the
numpy backend's small-input delegation threshold.  The detector kernel is
additionally checked against the per-message :class:`BurstDetector` — the
semantics both backends must reproduce, window deque included.
"""

import random
from collections import deque

import pytest

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import KeepAlive, Update
from repro.bgp.prefix import prefix_block
from repro.core import kernels
from repro.core.burst_detection import BurstDetector, BurstDetectorConfig
from repro.traces.columnar import ColumnarTrace

pytestmark = pytest.mark.kernels

NUMPY_ABSENT = "numpy" not in kernels.available_backends()

requires_numpy = pytest.mark.skipif(
    NUMPY_ABSENT, reason="numpy kernel backend not importable"
)

PREFIXES = prefix_block("10.0.0.0/24", 64)
ATTRS = PathAttributes(as_path=ASPath([2, 5, 6]), next_hop=2, local_pref=100)


def _trace(messages):
    return ColumnarTrace.from_messages(messages)


def _withdraw(timestamp, prefixes):
    return Update(timestamp=timestamp, peer_as=2, withdrawals=tuple(prefixes))


def _announce(timestamp, prefix):
    return Update.announce(timestamp, 2, prefix, ATTRS)


def _fuzz_messages(rng, count):
    """A random single-peer message stream with every row shape mixed in."""
    messages = []
    timestamp = 0.0
    for _ in range(count):
        timestamp += rng.choice([0.0, 0.0, 0.1, 0.5, 2.0, 11.0])
        roll = rng.random()
        if roll < 0.45:
            n = rng.randint(1, 4)
            messages.append(
                _withdraw(timestamp, rng.sample(PREFIXES, n))
            )
        elif roll < 0.7:
            messages.append(_announce(timestamp, rng.choice(PREFIXES)))
        elif roll < 0.8:
            n = rng.randint(1, 3)
            messages.append(
                Update(
                    timestamp=timestamp,
                    peer_as=2,
                    withdrawals=tuple(rng.sample(PREFIXES, n)),
                    announcements=(
                        Update.announce(
                            timestamp, 2, rng.choice(PREFIXES), ATTRS
                        ).announcements
                    ),
                )
            )
        elif roll < 0.9:
            messages.append(Update(timestamp=timestamp, peer_as=2))
        else:
            messages.append(KeepAlive(timestamp=timestamp, peer_as=2))
    return messages


DEGENERATE_STREAMS = {
    "empty": [],
    "single_row": [_withdraw(0.0, PREFIXES[:1])],
    "single_announcement": [_announce(0.0, PREFIXES[0])],
    "all_withdrawals": [
        _withdraw(float(i) * 0.5, [PREFIXES[i % len(PREFIXES)]]) for i in range(80)
    ],
    "identical_timestamps": [
        _withdraw(5.0, [PREFIXES[i % len(PREFIXES)]]) for i in range(60)
    ],
    # Burst starts, then quiet rows walk the window sum down so the burst
    # ends exactly on the last row of the trace.
    "window_ends_on_last_row": (
        [_withdraw(float(i) * 0.01, PREFIXES[:2]) for i in range(10)]
        + [_announce(30.0 + float(i), PREFIXES[0]) for i in range(5)]
        + [_withdraw(40.0, PREFIXES[:1])]
    ),
}

DETECTOR_CONFIGS = [
    BurstDetectorConfig(window_seconds=10.0, start_threshold=10, stop_threshold=2),
    BurstDetectorConfig(window_seconds=2.0, start_threshold=4, stop_threshold=0),
]


def _reference_detector_feed(messages, config):
    """Per-message reference: the behaviour observe_run must reproduce."""
    detector = BurstDetector(config, kernel=kernels.get_backend("stdlib"))
    events = []
    for index, message in enumerate(messages):
        if not isinstance(message, Update):
            continue
        if message.withdrawals:
            event = detector.observe_withdrawals(
                message.timestamp, len(message.withdrawals)
            )
        else:
            event = detector.observe_time(message.timestamp)
        if event is not None:
            events.append((index, event))
    return detector, events


def _run_detector(trace, config, backend, splits):
    detector = BurstDetector(config, kernel=backend)
    events = []
    position = 0
    total = len(trace.msg_time)
    for stop in list(splits) + [total]:
        stop = min(stop, total)
        if stop <= position:
            continue
        run = _Window(trace, position, stop)
        events.extend(detector.observe_run(run))
        position = stop
    return detector, events


class _Window:
    """Minimal duck-typed run: trace + row window."""

    def __init__(self, trace, start, stop):
        self.trace = trace
        self.start = start
        self.stop = stop


def _detector_state(detector):
    return (
        list(detector._window),
        detector._in_window,
        detector.state,
        detector.current_burst_start,
        detector.events,
    )


@pytest.mark.parametrize("name", sorted(DEGENERATE_STREAMS))
@pytest.mark.parametrize("config", DETECTOR_CONFIGS, ids=["w10", "w2"])
def test_detector_scan_degenerate_parity(name, config):
    messages = DEGENERATE_STREAMS[name]
    trace = _trace(messages)
    reference, expected_events = _reference_detector_feed(messages, config)
    for backend_name in kernels.available_backends():
        backend = kernels.get_backend(backend_name)
        detector, events = _run_detector(trace, config, backend, splits=[])
        assert events == expected_events, (name, backend_name)
        assert _detector_state(detector) == _detector_state(reference), (
            name,
            backend_name,
        )


@pytest.mark.parametrize("count", [0, 1, 2, 30, 47, 48, 49, 200, 400])
def test_detector_scan_fuzz_parity(count):
    for seed in range(6):
        rng = random.Random(1000 * count + seed)
        messages = _fuzz_messages(rng, count)
        trace = _trace(messages)
        config = rng.choice(DETECTOR_CONFIGS)
        splits = (
            sorted(rng.sample(range(count), min(count, rng.randint(0, 3))))
            if count
            else []
        )
        reference, expected_events = _reference_detector_feed(messages, config)
        for backend_name in kernels.available_backends():
            backend = kernels.get_backend(backend_name)
            detector, events = _run_detector(trace, config, backend, splits)
            assert events == expected_events, (count, seed, backend_name)
            assert _detector_state(detector) == _detector_state(reference), (
                count,
                seed,
                backend_name,
            )


def _column_windows(total, rng, samples=4):
    windows = [(0, total), (0, 0), (total, total)]
    if total:
        windows.append((0, 1))
        windows.append((total - 1, total))
    for _ in range(samples):
        lo = rng.randint(0, total)
        hi = rng.randint(lo, total)
        windows.append((lo, hi))
    return windows


@requires_numpy
@pytest.mark.parametrize("count", [0, 1, 30, 48, 120, 300])
def test_span_kernels_cross_backend_parity(count):
    stdlib = kernels.get_backend("stdlib")
    vectorised = kernels.get_backend("numpy")
    for seed in range(4):
        rng = random.Random(31 * count + seed)
        trace = _trace(_fuzz_messages(rng, count))
        total = len(trace.msg_time)
        kinds, wd_end, ann_end = trace.msg_kind, trace.wd_end, trace.ann_end
        for lo, hi in _column_windows(total, rng):
            assert stdlib.event_rows(kinds, wd_end, ann_end, lo, hi) == (
                vectorised.event_rows(kinds, wd_end, ann_end, lo, hi)
            )
            assert stdlib.interesting_rows(kinds, wd_end, ann_end, lo, hi) == (
                vectorised.interesting_rows(kinds, wd_end, ann_end, lo, hi)
            )
            assert stdlib.last_update_row(kinds, lo, hi) == (
                vectorised.last_update_row(kinds, lo, hi)
            )
            if hi > lo:
                base = wd_end[lo - 1] if lo else 0
                span = wd_end[hi - 1] - base
                for value in {base, base + 1, base + span, base + span + 5}:
                    assert stdlib.find_crossing(wd_end, value, lo, hi) == (
                        vectorised.find_crossing(wd_end, value, lo, hi)
                    )
                    assert stdlib.next_positive_row(wd_end, value, lo, hi) == (
                        vectorised.next_positive_row(wd_end, value, lo, hi)
                    )


@requires_numpy
@pytest.mark.parametrize("count", [0, 1, 47, 48, 200])
def test_run_boundaries_cross_backend_parity(count):
    stdlib = kernels.get_backend("stdlib")
    vectorised = kernels.get_backend("numpy")
    for seed in range(4):
        rng = random.Random(77 * count + seed)
        messages = _fuzz_messages(rng, count)
        # Multi-peer stream: re-stamp peers to create runs.
        messages = [
            type(message)(
                **{
                    **{
                        field: getattr(message, field)
                        for field in ("timestamp", "announcements", "withdrawals")
                        if hasattr(message, field)
                    },
                    "peer_as": rng.choice([2, 3, 4]),
                }
            )
            if isinstance(message, Update)
            else message
            for message in messages
        ]
        trace = _trace(messages)
        peers = trace.msg_peer
        total = len(peers)
        for max_run in (None, 1, 7, 1000):
            assert stdlib.run_boundaries(peers, total, max_run) == (
                vectorised.run_boundaries(peers, total, max_run)
            ), (count, seed, max_run)


@requires_numpy
def test_fresh_candidate_rows_cross_backend_sets():
    """Backends may order candidates differently; the *sets* must match.

    The numpy mask is a negative cache: a row it returns once must never be
    returned again, and the stdlib reference (mask-less) deduplicates only
    within one call — so cross-call semantics are checked per backend.
    """
    stdlib = kernels.get_backend("stdlib")
    vectorised = kernels.get_backend("numpy")
    rng = random.Random(5)
    for count in (1, 30, 100, 300):
        messages = [
            _withdraw(float(i), rng.sample(PREFIXES, rng.randint(1, 5)))
            for i in range(count)
        ]
        trace = _trace(messages)
        wd_prefix = trace.wd_prefix
        total = len(wd_prefix)
        cut = total // 2
        mask = vectorised.new_seen_mask(trace.pool.prefix_count)
        first_np = vectorised.fresh_candidate_rows(mask, wd_prefix, 0, cut)
        first_py = stdlib.fresh_candidate_rows(None, wd_prefix, 0, cut)
        assert set(first_np) == set(first_py)
        assert len(first_np) == len(set(first_np))
        # Second window: rows already returned must not reappear (numpy),
        # while the mask-less stdlib reference re-reports them.
        second_np = vectorised.fresh_candidate_rows(mask, wd_prefix, cut, total)
        assert not (set(second_np) & set(first_np))
        second_py = stdlib.fresh_candidate_rows(None, wd_prefix, cut, total)
        assert set(first_np) | set(second_np) == set(first_py) | set(second_py)


def test_backend_selection_seam():
    assert kernels.get_backend("stdlib").NAME == "stdlib"
    assert kernels.get_backend(None) is kernels.default_backend()
    assert kernels.get_backend("auto") is kernels.default_backend()
    with pytest.raises(ValueError):
        kernels.get_backend("simd")
    names = kernels.available_backends()
    assert names[-1] == "stdlib"
    if NUMPY_ABSENT:
        assert kernels.numpy_version() == "absent"
        with pytest.raises(RuntimeError):
            kernels.get_backend("numpy")
    else:
        assert names[0] == "numpy"
        assert kernels.get_backend("numpy").VECTORISED
        assert kernels.numpy_version() not in ("", "absent")


def test_detector_scan_leaves_plain_python_state():
    """No numpy scalar may leak into detector state (pickling, equality)."""
    messages = DEGENERATE_STREAMS["all_withdrawals"]
    trace = _trace(messages)
    config = DETECTOR_CONFIGS[0]
    for backend_name in kernels.available_backends():
        detector, events = _run_detector(
            trace, config, kernels.get_backend(backend_name), splits=[]
        )
        for timestamp, count in detector._window:
            assert type(timestamp) is float
            assert type(count) is int
        for _, event in events:
            assert type(event.timestamp) is float
            assert type(event.withdrawals_in_window) is int
