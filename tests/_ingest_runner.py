"""Subprocess entry point for the ingest crash-recovery tests.

Runs the ingestion daemon over a fixed tiny synthetic corpus in
*supervised* mode (so injected ``kill`` faults hard-exit the process, the
``kill -9`` the recovery contract is tested against) and reports durable
progress on stdout::

    ACK <feed> <rows> <offset>     after every fsync'd flush / seal
    DONE <total rows>              after a clean, complete run

Faults arrive purely through the environment (``REPRO_FAULTS`` /
``REPRO_FAULT_SEED``), which is also how a restarted run is made clean.
The leading underscore keeps pytest from collecting this as a test
module; the test suite imports its corpus constants so the offline
comparator ingests exactly the same lines.

Usage: ``python tests/_ingest_runner.py <root> [segment_rows] [flush_rows]``
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.ingest import IngestConfig, IngestDaemon, SyntheticFeed  # noqa: E402
from repro.traces.synthetic import (  # noqa: E402
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
)
from repro.util.retry import RetryPolicy  # noqa: E402

#: The corpus every recovery scenario ingests: two small sessions, enough
#: rows for several segments at the default segment_rows below.
CORPUS = SyntheticTraceConfig(
    peer_count=2,
    duration_days=0.3,
    min_table_size=120,
    max_table_size=260,
    burst_size_minimum=60,
    noise_rate_per_second=0.03,
    seed=11,
)

DEFAULT_SEGMENT_ROWS = 120
DEFAULT_FLUSH_ROWS = 16


def corpus_peers():
    """The corpus' peer ASes, in fleet order."""
    return [peer.peer_as for peer in SyntheticTraceGenerator(CORPUS).stream().peers]


def build_feeds():
    return [SyntheticFeed(CORPUS, peer_as) for peer_as in corpus_peers()]


def main() -> None:
    root = sys.argv[1]
    segment_rows = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_SEGMENT_ROWS
    flush_rows = int(sys.argv[3]) if len(sys.argv) > 3 else DEFAULT_FLUSH_ROWS

    def ack(name: str, rows: int, offset: int) -> None:
        print(f"ACK {name} {rows} {offset}", flush=True)

    daemon = IngestDaemon(
        root,
        build_feeds(),
        IngestConfig(
            flush_rows=flush_rows,
            segment_rows=segment_rows,
            stall_timeout=2.0,
            retry=RetryPolicy(max_attempts=4, backoff_base=0.01, backoff_max=0.05),
            supervised=True,
        ),
        ack=ack,
    )
    result = daemon.run()
    print(f"DONE {result.total_rows}", flush=True)


if __name__ == "__main__":
    main()
