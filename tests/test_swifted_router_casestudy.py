"""Integration tests: the SWIFTED router, the case study and the metrics."""

import random

import pytest

from repro.bgp.attributes import ASPath
from repro.bgp.messages import Update
from repro.bgp.prefix import Prefix, prefix_block
from repro.casestudy.controller import SdnSwitch, SwiftController, SwiftedDeployment
from repro.casestudy.probes import measure_downtime
from repro.casestudy.testbed import build_fig1_scenario
from repro.casestudy.vanilla import VanillaRouterModel
from repro.core import SwiftConfig, SwiftedRouter
from repro.core.burst_detection import BurstDetectorConfig
from repro.core.encoding import EncoderConfig
from repro.core.history import TriggeringSchedule
from repro.core.inference import InferenceConfig
from repro.metrics.classification import classify_inference, classify_prediction
from repro.metrics.convergence import downtime_series, learning_times
from repro.metrics.distributions import cdf_points, percentile, summarize
from repro.metrics.quadrants import Quadrant, quadrant_of, quadrant_shares
from repro.metrics.tables import format_table


def _small_swift_config():
    """A SWIFT configuration scaled to small test tables."""
    return SwiftConfig(
        inference=InferenceConfig(
            detector=BurstDetectorConfig(start_threshold=100, stop_threshold=1),
            schedule=TriggeringSchedule(steps=((200, 10 ** 6),), unconditional_after=200),
        ),
        encoder=EncoderConfig(prefix_threshold=50),
    )


def _build_router(prefix_count=1200):
    s6 = prefix_block("60.0.0.0/24", prefix_count)
    router = SwiftedRouter(1, _small_swift_config())
    for peer in (2, 3, 4):
        router.add_peer(peer)
    router.load_initial_routes(2, {p: ASPath([2, 5, 6]) for p in s6}, local_pref=200)
    router.load_initial_routes(3, {p: ASPath([3, 6]) for p in s6}, local_pref=100)
    router.load_initial_routes(4, {p: ASPath([4, 5, 6]) for p in s6}, local_pref=150)
    router.provision()
    return router, s6


class TestSwiftedRouter:
    def test_provisioning_builds_tags_and_backups(self):
        router, s6 = _build_router()
        encoded = router.encoded_tags
        assert encoded is not None
        assert len(encoded.tags) == len(s6)
        assert router.backup_table, "backups should be pre-computed"
        # Pre-failure forwarding follows the preferred BGP route (via AS 2).
        assert router.forward(s6[0].network) == 2

    def test_reroute_on_burst_and_fallback(self):
        router, s6 = _build_router()
        rng = random.Random(1)
        order = list(s6)
        rng.shuffle(order)
        messages = [
            Update.withdraw(10.0 + index * 0.001, 2, prefix)
            for index, prefix in enumerate(order)
        ]
        actions = router.receive_all(messages)
        assert len(actions) == 1
        action = actions[0]
        assert any(link == (5, 6) or link == (2, 5) for link in action.inferred_links)
        assert action.rule_count >= 1
        assert action.dataplane_update_seconds < 1.0
        # Affected traffic now leaves via the surviving neighbor AS 3.
        assert router.forward(s6[0].network) == 3
        # After BGP reconvergence the SWIFT rules are removed.
        router.clear_reroutes()
        assert router.forward(s6[0].network) == 2

    def test_receive_before_provision_raises(self):
        router = SwiftedRouter(1, _small_swift_config())
        router.add_peer(2)
        with pytest.raises(RuntimeError):
            router.receive(Update.withdraw(0.0, 2, Prefix.from_string("10.0.0.0/24")))

    def test_no_reroute_for_small_churn(self):
        router, s6 = _build_router()
        messages = [
            Update.withdraw(10.0 + index, 2, prefix)
            for index, prefix in enumerate(s6[:20])
        ]
        assert router.receive_all(messages) == []


class TestCaseStudy:
    def test_vanilla_downtime_scales_linearly(self):
        model = VanillaRouterModel()
        small = model.downtime_for_burst_size(10000)
        large = model.downtime_for_burst_size(100000)
        assert large / small == pytest.approx(10.0, rel=0.1)

    def test_fig1_scenario_construction(self):
        scenario = build_fig1_scenario(prefix_count=2000, probe_count=20, seed=1)
        assert scenario.withdrawal_count == 2000
        assert len(scenario.probe_prefixes) == 20
        assert scenario.surviving_next_hops == frozenset({3})
        assert all(p in scenario.prefixes for p in scenario.probe_prefixes)

    def test_vanilla_converge_scenario(self):
        scenario = build_fig1_scenario(prefix_count=3000, seed=2)
        result = VanillaRouterModel().converge_scenario(scenario)
        downtimes = result.probe_downtimes(scenario.probe_prefixes)
        assert len(downtimes) == len(scenario.probe_prefixes)
        assert max(downtimes) <= result.total_convergence_seconds + 1e-9
        assert result.total_convergence_seconds > 0.5

    def test_swifted_deployment_beats_vanilla(self):
        scenario = build_fig1_scenario(prefix_count=30000, seed=3)
        vanilla = VanillaRouterModel().converge_scenario(scenario)
        deployment = SwiftedDeployment.for_scenario(scenario)
        swift_seconds = deployment.run_burst(scenario)
        assert swift_seconds is not None
        assert swift_seconds < vanilla.total_convergence_seconds / 2
        # The deployment's data plane now sends affected traffic to AS 3.
        assert deployment.controller.forward(scenario.probe_prefixes[0].network) == 3

    def test_sdn_switch_programming_latency(self):
        switch = SdnSwitch(flow_mod_seconds=0.001)
        completion = switch.program([], at=1.0)
        assert completion == 1.0
        completion = switch.program(
            [__import__("repro.core.encoding", fromlist=["WildcardRule"]).WildcardRule(0, 0, 3)] * 10,
            at=1.0,
        )
        assert completion == pytest.approx(1.01)
        assert switch.rule_count == 10

    def test_measure_downtime_with_oracle(self):
        probes = prefix_block("10.0.0.0/24", 5)
        # Probes recover at t=3 when forwarding switches to next-hop 3.
        oracle = lambda prefix, t: 3 if t >= 3.0 else 2
        report = measure_downtime(
            probes, oracle, working_next_hops=[3], failure_time=0.0, horizon=10.0, step=0.5
        )
        assert report.max_downtime == pytest.approx(3.0)
        series = report.loss_series(step=1.0)
        assert series[0][1] == 100.0
        assert series[-1][1] == 0.0


class TestMetrics:
    def test_classification_counts(self):
        prefixes = prefix_block("10.0.0.0/24", 100)
        withdrawn = set(prefixes[:40])
        predicted = set(prefixes[:50])
        counts = classify_inference(predicted, withdrawn, prefixes)
        assert counts.true_positives == 40
        assert counts.false_positives == 10
        assert counts.tpr == pytest.approx(1.0)
        assert counts.fpr == pytest.approx(10 / 60)

    def test_prediction_excludes_already_withdrawn(self):
        prefixes = prefix_block("10.0.0.0/24", 100)
        withdrawn_total = set(prefixes[:40])
        withdrawn_before = set(prefixes[:10])
        predicted = set(prefixes[:40])
        counts = classify_prediction(predicted, withdrawn_before, withdrawn_total, prefixes)
        assert counts.true_positives == 30
        assert counts.false_positives == 0

    def test_quadrants(self):
        assert quadrant_of(0.9, 0.1) == Quadrant.TOP_LEFT
        assert quadrant_of(0.9, 0.9) == Quadrant.TOP_RIGHT
        assert quadrant_of(0.1, 0.1) == Quadrant.BOTTOM_LEFT
        assert quadrant_of(0.1, 0.9) == Quadrant.BOTTOM_RIGHT
        shares = quadrant_shares([(0.9, 0.1), (0.1, 0.9)])
        assert shares[Quadrant.TOP_LEFT] == 0.5
        with pytest.raises(ValueError):
            quadrant_of(1.5, 0.0)

    def test_distribution_helpers(self):
        values = list(range(1, 101))
        assert percentile(values, 0.5) == pytest.approx(50.5)
        summary = summarize(values)
        assert summary.median == pytest.approx(50.5)
        assert summary.p95 > summary.p75 > summary.p25
        points = cdf_points(values)
        assert points[-1][1] == 1.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_learning_times(self):
        prefixes = prefix_block("10.0.0.0/24", 4)
        times = {prefixes[0]: 5.0, prefixes[1]: 10.0, prefixes[2]: 20.0, prefixes[3]: 30.0}
        result = learning_times(times, burst_start=0.0, prediction_time=8.0,
                                predicted_prefixes=prefixes[1:])
        assert result.bgp_seconds == (5.0, 10.0, 20.0, 30.0)
        # Predicted prefixes are learned at the prediction time (8 s), the
        # unpredicted one at its withdrawal time.
        assert sorted(result.swift_seconds) == [5.0, 8.0, 8.0, 8.0]

    def test_downtime_series_monotonic(self):
        series = downtime_series([1.0, 2.0, 5.0], failure_time=0.0, step=1.0)
        losses = [loss for _, loss in series]
        assert losses[0] == 100.0
        assert losses == sorted(losses, reverse=True)

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        assert "T" in text and "2.5" in text and "x" in text
