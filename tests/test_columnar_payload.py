"""Raw-buffer payloads, time windows and the mmap column store.

The contracts under test:

* ``to_payload()`` exports nothing but primitives (``bytes`` buffers,
  the format version, the tiny extras dict) and ``from_payload()`` rebuilds
  an identical trace — the fleet driver's inter-process transport;
* ``window(t0, t1)`` / ``slice(start, stop)`` produce standalone traces
  (rebased bound columns, shared pool) equal to filtering the message
  stream by timestamp;
* the column store writes header + raw segments, reloads via mmap +
  ``frombytes``, serves identical full loads and windows — and a window
  load materialises strictly fewer bytes than the file holds;
* the trace cache's ``.cols`` layout round-trips through
  ``load_or_build_columnar`` / ``open_columnar`` and rebuilds cleanly from
  a corrupt entry.
"""

import os
import pickle

import pytest

from repro.bgp.attributes import ASPath, Community, Origin, PathAttributes
from repro.bgp.messages import KeepAlive, Notification, OpenMessage, Update
from repro.bgp.prefix import prefix_block
from repro.traces.columnar import ColumnarTrace
from repro.traces.columnar_store import ColumnarTraceFile, read_trace, write_trace
from repro.traces.trace_cache import load_or_build_columnar, open_columnar
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
    cached_columnar_stream,
    cached_columnar_stream_file,
)


def _stream_messages():
    """A two-peer stream covering every message kind and update shape."""
    p = prefix_block("10.0.0.0/24", 40)
    rich = PathAttributes(
        as_path=ASPath([2, 5, 6]),
        next_hop=2,
        local_pref=250,
        med=17,
        origin=Origin.INCOMPLETE,
        communities=frozenset({Community(2, 100), Community(2, 200)}),
    )
    messages = [OpenMessage(0.0, 2, hold_time=30.0)]
    for index in range(120):
        timestamp = 1.0 + index * 0.5
        peer = 2 if index % 3 else 3
        if index % 4 == 0:
            messages.append(Update.withdraw(timestamp, peer, p[index % 40]))
        elif index % 7 == 0:
            messages.append(
                Update(
                    timestamp=timestamp,
                    peer_as=peer,
                    announcements=(),
                    withdrawals=(p[index % 40], p[(index + 1) % 40]),
                )
            )
        else:
            attrs = rich if index % 2 else PathAttributes(
                as_path=ASPath([peer, 7, 6]), next_hop=peer
            )
            messages.append(Update.announce(timestamp, peer, p[index % 40], attrs))
    messages.append(KeepAlive(70.0, 2))
    messages.append(
        Notification(71.0, 3, error_code=6, error_subcode=1, reason="shutdown")
    )
    return messages


@pytest.fixture(scope="module")
def messages():
    return _stream_messages()


@pytest.fixture(scope="module")
def trace(messages):
    return ColumnarTrace.from_messages(messages)


class TestPayloads:
    def test_round_trip_is_identity(self, trace, messages):
        assert ColumnarTrace.from_payload(trace.to_payload()).to_messages() == messages

    def test_payload_holds_only_primitives(self, trace):
        payload = trace.to_payload()
        assert isinstance(payload["format"], int)
        assert all(isinstance(buf, bytes) for buf in payload["pool"].values())
        for name in (
            "msg_time", "msg_peer", "msg_kind", "wd_end", "ann_end",
            "wd_prefix", "ann_prefix", "ann_attr",
        ):
            assert isinstance(payload[name], bytes), name

    def test_payload_pickle_carries_no_message_objects(self, trace):
        # The transport property: pickling a payload never walks an object
        # graph, so no repro class name appears in the pickle stream.
        flat = pickle.dumps(trace.to_payload(), protocol=pickle.HIGHEST_PROTOCOL)
        assert b"repro.bgp" not in flat

    def test_version_mismatch_refuses_to_restore(self, trace):
        payload = trace.to_payload()
        payload["format"] = 999
        with pytest.raises(ValueError, match="v999"):
            ColumnarTrace.from_payload(payload)

    def test_restored_trace_interns_further_appends(self, trace, messages):
        restored = ColumnarTrace.from_payload(trace.to_payload())
        before = restored.pool.prefix_count
        restored.append(messages[1])  # announcement of an already-interned prefix
        assert restored.pool.prefix_count == before


class TestWindows:
    @pytest.mark.parametrize("bounds", [(10.0, 30.0), (0.0, 1.0), (60.0, 200.0)])
    def test_window_matches_timestamp_filter(self, trace, messages, bounds):
        t0, t1 = bounds
        expected = [m for m in messages if t0 <= m.timestamp < t1]
        window = trace.window(t0, t1)
        assert window.to_messages() == expected
        assert window.message_count == len(expected)

    def test_window_is_replayable_standalone(self, trace):
        window = trace.window(10.0, 30.0)
        runs = list(window.iter_batches())
        assert sum(len(run) for run in runs) == window.message_count
        assert window.withdrawal_total == sum(run.withdrawal_count() for run in runs)

    def test_window_shares_the_pool(self, trace):
        assert trace.window(10.0, 30.0).pool is trace.pool

    def test_empty_and_full_windows(self, trace, messages):
        assert trace.window(1000.0, 2000.0).to_messages() == []
        assert trace.window(0.0, 1e9).to_messages() == messages

    def test_slice_clamps_out_of_range_indices(self, trace, messages):
        assert trace.slice(-5, 10 ** 9).to_messages() == messages

    def test_window_keeps_extras(self, trace):
        tail = trace.window(69.0, 100.0)
        kinds = [type(m).__name__ for m in tail.to_messages()]
        assert kinds == ["KeepAlive", "Notification"]
        notification = tail.to_messages()[-1]
        assert notification.reason == "shutdown"


class TestWindowEdgeCases:
    """`window(t0, t1)` / `slice()` degenerate bounds, in memory and on disk.

    Every case must yield a *well-formed* (possibly empty) trace — rebased
    bound columns, replayable through `iter_batches()` — rather than a
    bisect surprise; the on-disk `ColumnarTraceFile` must agree with the
    in-memory form bound for bound.
    """

    @pytest.fixture(scope="class")
    def dup_trace(self):
        """A small trace with *repeated* timestamps on the boundaries."""
        from repro.bgp.attributes import ASPath as _ASPath, PathAttributes as _PA
        from repro.bgp.prefix import Prefix as _Prefix

        trace = ColumnarTrace()
        prefix = _Prefix.from_string("10.0.0.0/24")
        attrs = _PA(as_path=_ASPath([2, 5, 6]), next_hop=2)
        for timestamp in (0.0, 1.0, 1.0, 1.0, 2.0, 3.0, 3.0, 5.0):
            trace.announce(timestamp, 2, prefix, attrs)
        for timestamp in (5.0, 6.0):
            trace.withdraw(timestamp, 2, prefix)
        return trace

    @pytest.fixture(scope="class")
    def dup_store(self, dup_trace, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("edge") / "dup.cols")
        write_trace(path, dup_trace)
        with ColumnarTraceFile(path) as store:
            yield store

    @pytest.mark.parametrize(
        "bounds",
        [
            (3.0, 1.0),        # t0 > t1
            (2.5, 2.5),        # empty window, t0 == t1
            (1.0, 3.0),        # both boundaries exactly on (repeated) stamps
            (5.0, 6.0),        # t0 on the UPDATE-kind switchover
            (100.0, 200.0),    # entirely past the end of the stream
            (-10.0, -5.0),     # entirely before the start
            (-10.0, 100.0),    # superset of the stream
            (6.0, 100.0),      # t0 exactly on the last timestamp
        ],
    )
    def test_degenerate_bounds_match_timestamp_filter(
        self, dup_trace, dup_store, bounds
    ):
        t0, t1 = bounds
        expected = [m for m in dup_trace.to_messages() if t0 <= m.timestamp < t1]
        for loaded in (dup_trace.window(t0, t1), dup_store.window(t0, t1)):
            assert loaded.to_messages() == expected
            assert loaded.message_count == len(expected)
            # Well-formed: rebased bounds line up with the per-prefix columns
            # and the window replays standalone.
            assert (loaded.wd_end[-1] if len(loaded.wd_end) else 0) == len(
                loaded.wd_prefix
            )
            assert (loaded.ann_end[-1] if len(loaded.ann_end) else 0) == len(
                loaded.ann_prefix
            )
            runs = list(loaded.iter_batches())
            assert sum(len(run) for run in runs) == len(expected)

    def test_reversed_and_out_of_range_slices(self, dup_trace, dup_store):
        for start, stop in [(7, 3), (-5, 3), (5, 10 ** 9), (10 ** 6, 10 ** 6 + 5)]:
            in_memory = dup_trace.slice(start, stop)
            on_disk = dup_store.slice(start, stop)
            assert in_memory.to_messages() == on_disk.to_messages()

    def test_empty_trace_windows(self, tmp_path):
        empty = ColumnarTrace()
        path = str(tmp_path / "empty.cols")
        write_trace(path, empty)
        with ColumnarTraceFile(path) as store:
            for t0, t1 in [(0.0, 1.0), (1.0, 0.0), (5.0, 5.0)]:
                assert empty.window(t0, t1).to_messages() == []
                assert store.window(t0, t1).to_messages() == []
            assert store.message_count == 0

    def test_empty_window_reads_no_prefix_segments(self, dup_store):
        dup_store.pool()  # the interning tables are shared by every load
        before = dup_store.bytes_read
        loaded = dup_store.window(100.0, 200.0)
        assert loaded.message_count == 0
        # Locating and loading an empty window must not materialise any
        # per-prefix column bytes (the pool may already be cached).
        assert dup_store.bytes_read - before == 0


class TestColumnStore:
    def test_full_load_round_trips(self, tmp_path, trace, messages):
        path = str(tmp_path / "trace.cols")
        write_trace(path, trace)
        assert read_trace(path).to_messages() == messages

    def test_window_load_matches_in_memory_window(self, tmp_path, trace):
        path = str(tmp_path / "trace.cols")
        write_trace(path, trace)
        with ColumnarTraceFile(path) as store:
            loaded = store.window(10.0, 30.0)
            assert loaded.to_messages() == trace.window(10.0, 30.0).to_messages()

    def test_window_load_reads_less_than_the_blob(self, tmp_path, trace):
        path = str(tmp_path / "trace.cols")
        write_trace(path, trace)
        with ColumnarTraceFile(path) as store:
            store.window(10.0, 30.0)
            assert 0 < store.bytes_read < store.file_size

    def test_message_count_reads_no_segment(self, tmp_path, trace):
        path = str(tmp_path / "trace.cols")
        write_trace(path, trace)
        with ColumnarTraceFile(path) as store:
            assert store.message_count == trace.message_count
            assert store.bytes_read == 0

    def test_not_a_store_file_raises(self, tmp_path):
        path = tmp_path / "bogus.cols"
        path.write_bytes(b"definitely not a column store")
        with pytest.raises(ValueError, match="not a columnar store"):
            ColumnarTraceFile(str(path))


class TestColumnarCacheLayout:
    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        directory = tmp_path / "cache"
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(directory))
        return directory

    def test_load_or_build_columnar_hits_after_miss(self, cache_dir, trace, messages):
        builds = []

        def build():
            builds.append(1)
            return trace

        first = load_or_build_columnar("stream", "spec", build, format_version=1)
        second = load_or_build_columnar("stream", "spec", build, format_version=1)
        assert builds == [1]
        assert first.to_messages() == messages
        assert second.to_messages() == messages
        names = os.listdir(cache_dir)
        assert len(names) == 1 and names[0].endswith(".cols")

    def test_corrupt_cols_entry_rebuilds(self, cache_dir, trace, messages):
        load_or_build_columnar("stream", "spec", lambda: trace, format_version=1)
        (entry,) = cache_dir.iterdir()
        entry.write_bytes(b"garbage")
        rebuilt = load_or_build_columnar("stream", "spec", lambda: trace, format_version=1)
        assert rebuilt.to_messages() == messages

    def test_open_columnar_serves_windows(self, cache_dir, trace):
        store = open_columnar("stream", "spec", lambda: trace, format_version=1)
        try:
            window = store.window(10.0, 30.0)
            assert window.to_messages() == trace.window(10.0, 30.0).to_messages()
            assert store.bytes_read < store.file_size
        finally:
            store.close()

    def test_open_columnar_disabled_cache_returns_none(self, monkeypatch, trace):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert open_columnar("stream", "spec", lambda: trace) is None

    def test_cached_columnar_stream_roundtrip(self, cache_dir):
        config = SyntheticTraceConfig(
            peer_count=2,
            duration_days=1.0,
            min_table_size=400,
            max_table_size=800,
            noise_rate_per_second=0.02,
            seed=23,
        )
        peer_as = SyntheticTraceGenerator(config).stream().peers[0].peer_as
        generated = cached_columnar_stream(config, peer_as)  # miss: generates
        reloaded = cached_columnar_stream(config, peer_as)  # hit: mmap load
        assert reloaded.to_messages() == generated.to_messages()

        store = cached_columnar_stream_file(config, peer_as)
        try:
            first, last = generated.first_timestamp, generated.last_timestamp
            midpoint = (first + last) / 2.0
            window = store.window(first, midpoint)
            assert window.to_messages() == generated.window(first, midpoint).to_messages()
            assert 0 < window.message_count < generated.message_count
            assert store.bytes_read < store.file_size
        finally:
            store.close()
