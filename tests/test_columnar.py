"""Columnar trace substrate: round-trip parity, batched-replay equivalence,
cache-key hardening and profile-grouped backup parity.

The contracts under test:

* object stream -> columns -> object stream is the identity (all message
  kinds, update packing, implicit withdraws, AS-path edge cases);
* replaying a stream via ``iter_batches()`` through the speaker / SWIFTED
  router produces the same Loc-RIB, loss/recovery events, inference results
  and reroute actions as the object-based paths;
* trace-cache keys embed the cache and columnar format versions plus the
  full (default-inclusive) parameter fingerprint, so stale entries miss
  cleanly and are never half-loaded;
* profile-grouped ``BackupComputer.compute_table`` matches the ungrouped
  reference exactly (and capacity-limited policies fall back to it).
"""

import pickle
import random

import pytest

from repro.bgp.attributes import ASPath, Community, Origin, PathAttributes
from repro.bgp.messages import KeepAlive, Notification, OpenMessage, Update
from repro.bgp.prefix import Prefix, prefix_block
from repro.bgp.speaker import BGPSpeaker
from repro.core import SwiftConfig, SwiftedRouter
from repro.core.backup import BackupComputer, ReroutingPolicy
from repro.core.burst_detection import BurstDetectorConfig
from repro.core.encoding import EncoderConfig
from repro.core.history import TriggeringSchedule
from repro.core.inference import InferenceConfig, InferenceEngine
from repro.traces import trace_cache
from repro.traces.columnar import (
    COLUMNAR_FORMAT_VERSION,
    ColumnarMessageView,
    ColumnarTrace,
    InternPool,
    decode_rib,
    encode_rib,
)
from repro.traces.mrt import TraceReader, TraceWriter, messages_to_records, records_to_columnar
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
)


def _attrs(path, next_hop, local_pref=100, **kwargs):
    return PathAttributes(
        as_path=ASPath(path), next_hop=next_hop, local_pref=local_pref, **kwargs
    )


def _mixed_stream():
    """A small stream covering every encoding corner."""
    p = prefix_block("10.0.0.0/24", 6)
    rich = PathAttributes(
        as_path=ASPath([2, 5, 6]),
        next_hop=2,
        local_pref=250,
        med=17,
        origin=Origin.INCOMPLETE,
        communities=frozenset({Community(2, 100), Community(2, 200)}),
    )
    return [
        OpenMessage(0.0, 2, hold_time=30.0),
        Update.announce(1.0, 2, p[0], rich),
        # AS-path prepending.
        Update.announce(1.5, 2, p[1], _attrs([2, 2, 2, 5, 6], 2)),
        # Empty AS path (e.g. locally originated).
        Update.announce(1.7, 2, p[2], _attrs([], 2)),
        Update.withdraw(2.0, 2, p[0]),
        # Implicit withdraw: re-announcement of p[1] over another path.
        Update.announce(2.5, 2, p[1], _attrs([2, 7, 6], 2)),
        # Update packing: announcements + withdrawals in one message.
        Update(
            timestamp=3.0,
            peer_as=3,
            announcements=(
                Update.announce(3.0, 3, p[3], _attrs([3, 6], 3)).announcements[0],
                Update.announce(3.0, 3, p[4], _attrs([3, 6], 3)).announcements[0],
            ),
            withdrawals=(p[5], p[2]),
        ),
        KeepAlive(4.0, 2),
        Notification(5.0, 3, error_code=4, error_subcode=1, reason="reset"),
        # Re-announcement with the exact same attributes (interned).
        Update.announce(6.0, 2, p[0], rich),
    ]


class TestColumnarRoundTrip:
    def test_object_stream_round_trips_identically(self):
        messages = _mixed_stream()
        trace = ColumnarTrace.from_messages(messages)
        assert trace.to_messages() == messages

    def test_round_trip_survives_pickling(self):
        messages = _mixed_stream()
        blob = pickle.dumps(
            ColumnarTrace.from_messages(messages), protocol=pickle.HIGHEST_PROTOCOL
        )
        assert pickle.loads(blob).to_messages() == messages

    def test_interning_shares_materialised_objects(self):
        messages = _mixed_stream()
        back = ColumnarTrace.from_messages(messages).to_messages()
        first, again = back[1], back[-1]
        assert first.announcements[0] is again.announcements[0]
        assert first.announcements[0].attributes is again.announcements[0].attributes

    def test_aggregates_match_object_counts(self):
        messages = _mixed_stream()
        trace = ColumnarTrace.from_messages(messages)
        withdrawals = sum(
            len(m.withdrawals) for m in messages if isinstance(m, Update)
        )
        announcements = sum(
            len(m.announcements) for m in messages if isinstance(m, Update)
        )
        assert trace.withdrawal_total == withdrawals
        assert trace.announcement_total == announcements
        view = trace.view()
        assert view.withdrawal_count() == withdrawals
        assert view.announcement_count() == announcements
        assert view.first_timestamp == messages[0].timestamp
        assert view.last_timestamp == messages[-1].timestamp

    def test_format_version_mismatch_refuses_to_restore(self):
        trace = ColumnarTrace.from_messages(_mixed_stream())
        state = list(trace.__getstate__())
        state[0] = COLUMNAR_FORMAT_VERSION + 1
        stale = ColumnarTrace.__new__(ColumnarTrace)
        with pytest.raises(ValueError):
            stale.__setstate__(tuple(state))

    def test_communities_at_on_fresh_pool(self):
        """Regression: entry 0 (the empty set) must not shift later entries."""
        pool = InternPool()
        first = pool.intern_communities(frozenset({Community(65000, 1)}))
        second = pool.intern_communities(frozenset({Community(65000, 2)}))
        assert pool.communities_at(0) == frozenset()
        assert pool.communities_at(first) == frozenset({Community(65000, 1)})
        assert pool.communities_at(second) == frozenset({Community(65000, 2)})

    def test_append_after_restore_reuses_interned_entries(self):
        """A pickle-restored pool must not duplicate table entries on append."""
        messages = _mixed_stream()
        restored = pickle.loads(
            pickle.dumps(
                ColumnarTrace.from_messages(messages),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
        pool = restored.pool
        prefixes_before = pool.prefix_count
        attributes_before = pool.attribute_count
        restored.extend(messages)
        assert pool.prefix_count == prefixes_before
        assert pool.attribute_count == attributes_before
        assert restored.to_messages() == messages + messages

    def test_rib_columns_round_trip(self):
        prefixes = prefix_block("20.0.0.0/24", 50)
        rib = {p: ASPath([2, 40 + i % 5, 90]) for i, p in enumerate(prefixes)}
        pool = InternPool()
        prefix_column, path_column = encode_rib(rib, pool)
        assert decode_rib(prefix_column, path_column, pool) == rib

    def test_mrt_records_parse_into_columns(self, tmp_path):
        # The line-oriented MRT format cannot represent empty AS paths (an
        # empty field parses back as "no path"), so skip that corner here;
        # the columnar round-trip above covers it.
        messages = [
            m
            for m in _mixed_stream()
            if isinstance(m, (Update, Notification))
            and not any(len(a.attributes.as_path) == 0 for a in getattr(m, "announcements", ()))
        ]
        records = messages_to_records(messages)
        path = str(tmp_path / "dump.txt")
        with TraceWriter(path) as writer:
            writer.write_all(records)
        trace = TraceReader(path).read_columnar()
        # The MRT format splits packed updates one prefix per record, so
        # compare at the record level: re-encoding the decoded stream gives
        # the same records.
        assert messages_to_records(trace.to_messages()) == records
        assert trace.withdrawal_total == sum(
            len(m.withdrawals) for m in messages if isinstance(m, Update)
        )


class TestIterBatches:
    def test_runs_group_consecutive_same_peer_messages(self):
        trace = ColumnarTrace.from_messages(_mixed_stream())
        runs = list(trace.iter_batches())
        assert [run.peer_as for run in runs] == [2, 3, 2, 3, 2]
        assert sum(len(run) for run in runs) == len(trace)
        flattened = [m for run in runs for m in run]
        assert flattened == trace.to_messages()

    def test_max_run_splits_without_reordering(self):
        trace = ColumnarTrace.from_messages(_mixed_stream())
        runs = list(trace.iter_batches(max_run=2))
        assert all(len(run) <= 2 for run in runs)
        assert [m for run in runs for m in run] == trace.to_messages()
        assert all(
            len({trace.msg_peer[i] for i in run._indices}) == 1 for run in runs
        )


def _random_messages(prefixes, rng, count=500, peers=(2, 3, 4)):
    messages = []
    for step in range(count):
        peer = peers[rng.randrange(len(peers))]
        prefix = prefixes[rng.randrange(len(prefixes))]
        timestamp = step * 0.01
        if rng.random() < 0.45:
            messages.append(Update.withdraw(timestamp, peer, prefix))
        else:
            path = [peer, 5 + rng.randrange(3), 9]
            messages.append(
                Update.announce(
                    timestamp, peer, prefix, _attrs(path, peer, 100 + 10 * peer)
                )
            )
    return messages


def _speaker(peers=(2, 3, 4), record_stream=True):
    speaker = BGPSpeaker(1)
    for peer in peers:
        speaker.add_peer(peer)
        speaker.session(peer).record_stream = record_stream
    return speaker


def _loc_rib_snapshot(speaker):
    best = {
        entry.prefix: (entry.peer_as, entry.as_path.asns)
        for entry in speaker.loc_rib.best_entries()
    }
    candidates = {
        prefix: sorted(
            (entry.peer_as, entry.as_path.asns)
            for entry in speaker.loc_rib.candidates(prefix)
        )
        for prefix in set(best) | set(speaker.loc_rib._candidates)
    }
    return best, candidates


def _event_sets(changes):
    losses = sorted(c.prefix for c in changes if c.is_loss_of_reachability)
    recoveries = sorted(c.prefix for c in changes if c.is_recovery)
    return losses, recoveries


class TestColumnarReplayParity:
    def test_speaker_columnar_matches_object_and_per_message(self):
        prefixes = prefix_block("10.0.0.0/24", 40)
        messages = _random_messages(prefixes, random.Random(7))
        trace = ColumnarTrace.from_messages(messages)

        object_speaker = _speaker()
        object_changes = object_speaker.receive_batch(messages)

        columnar_speaker = _speaker(record_stream=False)
        columnar_changes = columnar_speaker.receive_columnar(trace)

        sequential = _speaker()
        sequential_changes = []
        for message in messages:
            sequential_changes.extend(sequential.receive(message))

        assert _loc_rib_snapshot(columnar_speaker) == _loc_rib_snapshot(object_speaker)
        assert _loc_rib_snapshot(columnar_speaker) == _loc_rib_snapshot(sequential)
        assert _event_sets(columnar_changes) == _event_sets(object_changes)
        assert _event_sets(columnar_changes) == _event_sets(sequential_changes)

    def test_columnar_fast_path_falls_back_with_recording_on(self):
        """record_stream=True must not silently lose the recorded stream."""
        prefixes = prefix_block("10.0.0.0/24", 10)
        messages = _random_messages(prefixes, random.Random(1), count=60, peers=(2,))
        trace = ColumnarTrace.from_messages(messages)
        speaker = _speaker(peers=(2,), record_stream=True)
        speaker.receive_columnar(trace)
        assert len(speaker.session(2).stream) == len(messages) + 1  # + OPEN

    def test_session_stats_match_object_path(self):
        prefixes = prefix_block("10.0.0.0/24", 20)
        messages = _random_messages(prefixes, random.Random(3), count=200, peers=(2,))
        messages.append(Notification(10.0, 2, reason="maintenance"))
        trace = ColumnarTrace.from_messages(messages)

        object_speaker = _speaker(peers=(2,))
        object_speaker.receive_batch(messages)
        columnar_speaker = _speaker(peers=(2,), record_stream=False)
        columnar_speaker.receive_columnar(trace)

        object_stats = object_speaker.session(2).stats
        columnar_stats = columnar_speaker.session(2).stats
        assert columnar_stats.messages_received == object_stats.messages_received
        assert columnar_stats.withdrawals_received == object_stats.withdrawals_received
        assert (
            columnar_stats.announcements_received
            == object_stats.announcements_received
        )
        assert columnar_stats.session_resets == object_stats.session_resets
        assert columnar_stats.last_message_at == object_stats.last_message_at
        assert (
            columnar_speaker.session(2).state == object_speaker.session(2).state
        )


def _small_swift_config():
    return SwiftConfig(
        inference=InferenceConfig(
            detector=BurstDetectorConfig(start_threshold=100, stop_threshold=1),
            schedule=TriggeringSchedule(
                steps=((200, 10 ** 6),), unconditional_after=200
            ),
        ),
        encoder=EncoderConfig(prefix_threshold=50),
    )


def _loaded_router(prefix_count=800):
    s6 = prefix_block("60.0.0.0/24", prefix_count)
    router = SwiftedRouter(1, _small_swift_config())
    for peer in (2, 3, 4):
        router.add_peer(peer)
    router.load_initial_routes(2, {p: ASPath([2, 5, 6]) for p in s6}, local_pref=200)
    router.load_initial_routes(3, {p: ASPath([3, 6]) for p in s6}, local_pref=100)
    router.load_initial_routes(4, {p: ASPath([4, 5, 6]) for p in s6}, local_pref=150)
    router.provision()
    return router, s6


class TestSwiftedColumnarParity:
    def test_reroutes_and_inferences_match_object_path(self):
        """End-to-end: same burst via receive_batch vs receive_columnar."""
        object_router, s6 = _loaded_router()
        columnar_router, _ = _loaded_router()

        burst = [
            Update.withdraw(10.0 + i * 0.001, 2, prefix)
            for i, prefix in enumerate(s6[:400])
        ]
        # Interleave a few re-announcements on another session.
        for i, prefix in enumerate(s6[:20]):
            burst.append(
                Update.announce(
                    10.05 + i * 0.001, 4, prefix, _attrs([4, 8, 6], 4, 150)
                )
            )
        burst.sort(key=lambda m: m.timestamp)
        trace = ColumnarTrace.from_messages(burst)

        object_actions = object_router.receive_batch(list(burst))
        columnar_actions = columnar_router.receive_columnar(trace)

        assert [a.inferred_links for a in columnar_actions] == [
            a.inferred_links for a in object_actions
        ]
        assert [a.rerouted_prefixes for a in columnar_actions] == [
            a.rerouted_prefixes for a in object_actions
        ]
        assert (
            columnar_router.engine_for(2).results
            == object_router.engine_for(2).results
        )
        assert _loc_rib_snapshot(columnar_router.speaker) == _loc_rib_snapshot(
            object_router.speaker
        )

    def test_inference_results_match_on_synthetic_burst_corpus(self):
        """evaluate-style equivalence over generated bursts."""
        config = SyntheticTraceConfig(
            peer_count=2,
            duration_days=4,
            min_table_size=2000,
            max_table_size=5000,
            noise_rate_per_second=0.0,
            seed=23,
        )
        trace = SyntheticTraceGenerator(config).generate()
        checked = 0
        for burst in trace.bursts[:4]:
            rib = trace.rib_of(burst.peer.peer_as)
            object_engine = InferenceEngine(rib)
            object_results = object_engine.process_batch(burst.messages)

            columnar_engine = InferenceEngine(rib)
            columnar = ColumnarTrace.from_messages(burst.messages)
            columnar_results = []
            for run in columnar.iter_batches():
                columnar_results.extend(columnar_engine.process_batch(run))
            assert columnar_results == object_results
            checked += 1
        assert checked > 0


class TestTraceCacheHardening:
    def test_cache_version_bump_misses_cleanly(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        builds = []

        def builder():
            builds.append(1)
            return {"value": len(builds)}

        first = trace_cache.load_or_build("unit", "spec", builder)
        again = trace_cache.load_or_build("unit", "spec", builder)
        assert first == again == {"value": 1}
        assert len(builds) == 1

        monkeypatch.setattr(trace_cache, "CACHE_VERSION", trace_cache.CACHE_VERSION + 1)
        rebuilt = trace_cache.load_or_build("unit", "spec", builder)
        assert rebuilt == {"value": 2}
        assert len(builds) == 2

    def test_format_version_is_part_of_the_key(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        old = trace_cache.cache_path_for("trace", "spec", format_version=1)
        new = trace_cache.cache_path_for("trace", "spec", format_version=2)
        assert old != new

    def test_stale_blob_is_rebuilt_not_half_loaded(self, tmp_path, monkeypatch):
        """A pre-columnar (or corrupt) entry under the current key rebuilds."""
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        path = trace_cache.cache_path_for(
            "unit", "spec", format_version=COLUMNAR_FORMAT_VERSION
        )
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        value = trace_cache.load_or_build(
            "unit",
            "spec",
            lambda: "fresh",
            format_version=COLUMNAR_FORMAT_VERSION,
        )
        assert value == "fresh"

    def test_version_mismatched_columnar_payload_rebuilds(
        self, tmp_path, monkeypatch
    ):
        """A decode failure (embedded version check) degrades to a rebuild."""
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        trace = ColumnarTrace.from_messages(_mixed_stream())
        state = list(trace.__getstate__())
        state[0] = COLUMNAR_FORMAT_VERSION + 1

        class _StalePayload:
            def __reduce__(self):
                return (_restore_stale, (tuple(state),))

        path = trace_cache.cache_path_for(
            "unit", "stale", format_version=COLUMNAR_FORMAT_VERSION
        )
        with open(path, "wb") as handle:
            pickle.dump(_StalePayload(), handle)
        value = trace_cache.load_or_build(
            "unit",
            "stale",
            lambda: "rebuilt",
            format_version=COLUMNAR_FORMAT_VERSION,
            decode=lambda payload: payload,
        )
        assert value == "rebuilt"

    def test_fingerprint_includes_defaults(self):
        base = SyntheticTraceConfig()
        tweaked = SyntheticTraceConfig(reannounce_delay=301.0)
        assert trace_cache.fingerprint(base) != trace_cache.fingerprint(tweaked)
        assert "reannounce_delay" in trace_cache.fingerprint(base)


def _restore_stale(state):
    stale = ColumnarTrace.__new__(ColumnarTrace)
    stale.__setstate__(state)  # raises ValueError: version mismatch
    return stale


class TestGroupedBackupParity:
    def _router(self, policy=None, prefix_count=600):
        s6 = prefix_block("60.0.0.0/24", prefix_count)
        config = SwiftConfig(policy=policy) if policy else None
        router = SwiftedRouter(1, config)
        for peer in (2, 3, 4, 7):
            router.add_peer(peer)
        router.load_initial_routes(2, {p: ASPath([2, 5, 6]) for p in s6}, local_pref=200)
        router.load_initial_routes(3, {p: ASPath([3, 6]) for p in s6}, local_pref=100)
        router.load_initial_routes(4, {p: ASPath([4, 5, 6]) for p in s6}, local_pref=150)
        # A second path-sharing group on a subset, so profiles differ.
        router.load_initial_routes(
            7, {p: ASPath([7, 8, 6]) for p in s6[: prefix_count // 2]}, local_pref=120
        )
        return router

    def _parity(self, computer, router):
        best = {
            entry.prefix: entry
            for entry in router.speaker.loc_rib.best_entries()
        }
        grouped = computer.compute_table(
            1,
            best,
            router.speaker.alternate_routes,
            candidates_of=router.speaker.loc_rib.candidate_map,
        )
        keyless = computer.compute_table(1, best, router.speaker.alternate_routes)
        reference = computer.compute_table_reference(
            1, best, router.speaker.alternate_routes
        )
        assert grouped == reference
        assert keyless == reference
        return reference

    def test_grouped_matches_reference(self):
        router = self._router()
        reference = self._parity(BackupComputer(max_depth=4), router)
        assert reference, "expected non-empty backup table"

    def test_grouped_matches_reference_with_policy(self):
        policy = ReroutingPolicy(
            forbidden_next_hops=frozenset({4}),
            preferences={3: 0, 7: 1},
            default_preference=5,
        )
        router = self._router(policy=policy)
        self._parity(BackupComputer(policy=policy), router)

    def test_grouped_matches_reference_avoiding_both_endpoints(self):
        router = self._router()
        self._parity(BackupComputer(avoid_both_endpoints=True), router)

    def test_capacity_limits_take_the_reference_path(self):
        policy = ReroutingPolicy(capacity_limits={3: 100})
        router = self._router(policy=policy)
        computer = BackupComputer(policy=policy)
        best = {
            entry.prefix: entry
            for entry in router.speaker.loc_rib.best_entries()
        }
        grouped = computer.compute_table(
            1,
            best,
            router.speaker.alternate_routes,
            candidates_of=router.speaker.loc_rib.candidate_map,
        )
        reference = computer.compute_table_reference(
            1, best, router.speaker.alternate_routes
        )
        assert grouped == reference
        # The cap bites: at most 100 prefixes rerouted onto AS 3 per link.
        per_link_counts = {}
        for per_link in grouped.values():
            for link, selection in per_link.items():
                if selection.next_hop == 3:
                    per_link_counts[link] = per_link_counts.get(link, 0) + 1
        assert per_link_counts, "expected AS 3 selections"
        assert sum(per_link_counts.values()) <= 100
