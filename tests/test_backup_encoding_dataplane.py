"""Tests for backup computation, the tag encoding and the data plane."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.prefix import Prefix, prefix_block
from repro.bgp.rib import RibEntry
from repro.core.backup import BackupComputer, ReroutingPolicy
from repro.core.encoding import EncoderConfig, TagEncoder, WildcardRule
from repro.dataplane.fib import PerPrefixFib, TwoStageForwardingTable
from repro.dataplane.packet import Packet
from repro.dataplane.timing import FibUpdateTimingModel

PFX = prefix_block("60.0.0.0/24", 2000)


def _entry(prefix, path, peer=None, local_pref=100):
    as_path = ASPath(path)
    return RibEntry(
        prefix=prefix,
        attributes=PathAttributes(
            as_path=as_path, next_hop=as_path.first_hop, local_pref=local_pref
        ),
        peer_as=peer or as_path.first_hop,
    )


class TestReroutingPolicy:
    def test_forbidden_and_preferences(self):
        policy = ReroutingPolicy(
            forbidden_next_hops=frozenset({9}), preferences={3: 0, 4: 5}
        )
        assert not policy.allows(9)
        assert policy.allows(3)
        assert policy.preference_of(3) < policy.preference_of(4)
        assert policy.preference_of(42) == policy.default_preference

    def test_capacity(self):
        policy = ReroutingPolicy(capacity_limits={3: 2})
        assert policy.capacity_of(3) == 2
        assert policy.capacity_of(4) is None


class TestBackupComputer:
    def test_avoids_protected_link(self):
        computer = BackupComputer()
        prefix = PFX[0]
        alternates = [_entry(prefix, [3, 6]), _entry(prefix, [4, 5, 6])]
        selection = computer.select(prefix, (5, 6), alternates)
        assert selection is not None and selection.next_hop == 3

    def test_strict_mode_avoids_endpoints(self):
        computer = BackupComputer(avoid_both_endpoints=True)
        prefix = PFX[0]
        alternates = [_entry(prefix, [3, 6]), _entry(prefix, [4, 9, 10])]
        selection = computer.select(prefix, (5, 6), alternates)
        # (3, 6) visits endpoint 6 and is rejected in strict mode.
        assert selection is not None and selection.next_hop == 4

    def test_policy_preference_wins(self):
        policy = ReroutingPolicy(preferences={4: 0, 3: 5})
        computer = BackupComputer(policy=policy)
        prefix = PFX[0]
        alternates = [_entry(prefix, [3, 9, 6]), _entry(prefix, [4, 8, 6])]
        selection = computer.select(prefix, (5, 6), alternates)
        assert selection.next_hop == 4

    def test_capacity_limit_spills_to_next_choice(self):
        policy = ReroutingPolicy(preferences={3: 0, 4: 1}, capacity_limits={3: 1})
        computer = BackupComputer(policy=policy)
        usage = {}
        alternates = lambda prefix: [_entry(prefix, [3, 6]), _entry(prefix, [4, 8, 6])]
        first = computer.select(PFX[0], (5, 6), alternates(PFX[0]), usage)
        second = computer.select(PFX[1], (5, 6), alternates(PFX[1]), usage)
        assert first.next_hop == 3
        assert second.next_hop == 4

    def test_forbidden_next_hop_excluded(self):
        policy = ReroutingPolicy(forbidden_next_hops=frozenset({3}))
        computer = BackupComputer(policy=policy)
        alternates = [_entry(PFX[0], [3, 6])]
        assert computer.select(PFX[0], (5, 6), alternates) is None

    def test_protected_links_depth_limit(self):
        computer = BackupComputer(max_depth=2)
        links = computer.protected_links(ASPath([2, 5, 6, 7, 8]), local_as=1)
        assert links == [(1, 2), (2, 5)]

    def test_compute_table(self):
        computer = BackupComputer()
        best = {
            PFX[0]: _entry(PFX[0], [2, 5, 6], local_pref=200),
            PFX[1]: _entry(PFX[1], [2, 5, 6], local_pref=200),
        }
        alternates = {
            PFX[0]: [_entry(PFX[0], [3, 6])],
            PFX[1]: [_entry(PFX[1], [3, 6])],
        }
        table = computer.compute_table(1, best, lambda p: alternates[p])
        assert (5, 6) in table[PFX[0]]
        summary = computer.backup_next_hops_by_link(table)
        assert summary[(5, 6)] == {3: 2}


def _fig1_paths(count=2000):
    paths = {}
    for prefix in PFX[: count // 2]:
        paths[prefix] = ASPath([2, 5, 6])
    for prefix in PFX[count // 2 : count]:
        paths[prefix] = ASPath([2, 5, 6, 7])
    return paths


class TestTagEncoder:
    def test_tags_are_within_budget(self):
        encoder = TagEncoder(EncoderConfig(prefix_threshold=100))
        encoded = encoder.encode(_fig1_paths())
        assert all(0 <= tag < (1 << 48) for tag in encoded.tags.values())
        assert encoded.encoded_prefix_count == len(encoded.tags)

    def test_heavy_links_encoded_first(self):
        encoder = TagEncoder(EncoderConfig(path_bits=2, prefix_threshold=100))
        encoded = encoder.encode(_fig1_paths())
        # With only 2 bits, the heaviest (link, position) pairs win.
        assert encoded.is_encoded((2, 5), 1)

    def test_threshold_excludes_light_links(self):
        paths = _fig1_paths()
        # One extra path crossing a light link.
        paths[Prefix.from_string("99.0.0.0/24")] = ASPath([2, 9, 99])
        encoder = TagEncoder(EncoderConfig(prefix_threshold=100))
        encoded = encoder.encode(paths)
        assert not encoded.is_encoded((2, 9), 1)

    def test_reroute_rule_matches_affected_prefixes_only(self):
        paths = _fig1_paths()
        encoder = TagEncoder(EncoderConfig(prefix_threshold=100))
        encoded = encoder.encode(paths, neighbors=[2, 3])
        rules = encoder.reroute_rules(encoded, (6, 7), {3: 10})
        assert rules, "link (6,7) should be encoded"
        rule = rules[0]
        affected = [p for p, path in paths.items() if path.traverses((6, 7))]
        unaffected = [p for p, path in paths.items() if not path.traverses((6, 7))]
        # Tags of prefixes whose backup next-hop is 3 and path crosses (6, 7)
        # match; others never match.
        assert not any(rule.matches(encoded.tags[p]) for p in unaffected)

    def test_coverage_metric(self):
        paths = _fig1_paths()
        encoder = TagEncoder(EncoderConfig(prefix_threshold=100))
        encoded = encoder.encode(paths)
        coverage = encoder.coverage(encoded, paths, list(paths), [(5, 6)])
        assert coverage == pytest.approx(1.0)
        coverage_none = encoder.coverage(encoded, paths, list(paths), [(42, 43)])
        assert coverage_none == 0.0

    def test_next_hop_capacity_limited_by_bits(self):
        config = EncoderConfig(total_bits=16, path_bits=6, backup_depth=1)
        assert config.bits_per_nexthop == 5
        assert config.max_next_hops == 31

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EncoderConfig(path_bits=48, total_bits=48)
        with pytest.raises(ValueError):
            EncoderConfig(total_bits=0)


class TestWildcardRule:
    def test_matching(self):
        rule = WildcardRule(value=0b1010, mask=0b1110, next_hop=3)
        assert rule.matches(0b1011)
        assert not rule.matches(0b0010)

    @given(st.integers(0, 2**20 - 1), st.integers(0, 2**20 - 1))
    def test_match_is_mask_consistent(self, tag, mask):
        rule = WildcardRule(value=tag & mask, mask=mask, next_hop=1)
        assert rule.matches(tag)


class TestPerPrefixFib:
    def test_lpm_forwarding(self):
        fib = PerPrefixFib()
        fib.install(Prefix.from_string("10.0.0.0/8"), 2)
        fib.install(Prefix.from_string("10.1.0.0/16"), 3)
        assert fib.next_hop_of(Prefix.from_string("10.1.2.3/32").network) == 3
        assert fib.next_hop_of(Prefix.from_string("10.9.2.3/32").network) == 2
        packet = Packet(destination=Prefix.from_string("11.0.0.1/32").network)
        assert fib.forward(packet).dropped

    def test_update_counter(self):
        fib = PerPrefixFib()
        fib.install(PFX[0], 2)
        fib.withdraw(PFX[0])
        assert not fib.withdraw(PFX[0])
        assert fib.updates_applied == 2


class TestTwoStageTable:
    def _table(self):
        table = TwoStageForwardingTable()
        table.set_tag(PFX[0], 0b0101)
        table.set_tag(PFX[1], 0b1001)
        table.install_rule(WildcardRule(value=0b0001, mask=0b0011, next_hop=2), priority=0)
        return table

    def test_default_forwarding(self):
        table = self._table()
        assert table.forward_address(PFX[0].network) == 2
        assert table.forward_address(PFX[1].network) == 2

    def test_high_priority_rule_wins(self):
        table = self._table()
        table.install_rule(
            WildcardRule(value=0b0100, mask=0b0100, next_hop=3), priority=100
        )
        assert table.forward_address(PFX[0].network) == 3
        assert table.forward_address(PFX[1].network) == 2

    def test_clear_rules_by_priority(self):
        table = self._table()
        table.install_rule(WildcardRule(value=0, mask=0, next_hop=9), priority=100)
        removed = table.clear_rules(min_priority=100)
        assert removed == 1
        assert table.rule_count == 1

    def test_unknown_destination_dropped(self):
        table = self._table()
        assert table.forward_address(Prefix.from_string("99.0.0.1/32").network) is None


class TestTiming:
    def test_per_prefix_scaling_matches_table1_shape(self):
        timing = FibUpdateTimingModel()
        assert timing.per_prefix_convergence_time(290000) == pytest.approx(109.0, rel=0.05)
        assert timing.per_prefix_convergence_time(10000) == pytest.approx(3.75, rel=0.05)

    def test_rule_updates_are_milliseconds(self):
        timing = FibUpdateTimingModel()
        assert timing.rule_update_time(64) < 0.3
        assert timing.rule_update_time(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FibUpdateTimingModel(per_prefix_seconds=0)
        with pytest.raises(ValueError):
            FibUpdateTimingModel().per_prefix_update_time(-1)
