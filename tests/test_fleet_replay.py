"""Fleet replay parity and month-replay regressions.

The fleet driver's core claim — that a process-pool replay of a corpus is
*byte-identical* to sequential replay — is asserted here over a small
multi-session corpus, for both the SWIFTED path (reroute multisets) and the
speaker-only path (loss/recovery multisets).  Alongside ride the
month-replay regressions: the looped backup-alternate path for colliding
origin ASes, unknown-peer failure parity between the object and columnar
speaker paths, empty-batch edges, and run chunking smaller than one run.
"""

import pickle

import pytest

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import Update
from repro.bgp.prefix import Prefix, prefix_block
from repro.bgp.speaker import BGPSpeaker
from repro.core.history import TriggeringSchedule
from repro.core.inference import InferenceConfig
from repro.core.swifted_router import SwiftConfig
from repro.experiments.month_replay import (
    BACKUP_ORIGIN_AS,
    BACKUP_PEER_AS,
    _chunked_runs,
    backup_alternates,
    replay_stream,
)
from repro.replay import (
    SessionJob,
    build_session_jobs,
    format_fleet_result,
    replay_fleet,
    replay_jobs,
)
from repro.traces.columnar import ColumnarTrace
from repro.traces.synthetic import SyntheticTraceConfig

#: A corpus small enough for tier-1 but with real bursts on several
#: sessions (seed 17 places 14 bursts across 3 of the 4 peers).
_CORPUS = SyntheticTraceConfig(
    peer_count=4,
    duration_days=4.0,
    min_table_size=1500,
    max_table_size=4000,
    burst_size_minimum=400,
    noise_rate_per_second=0.01,
    seed=17,
)

#: Lowered trigger so SWIFT demonstrably fires on the small bursts.
_SWIFT = SwiftConfig(
    inference=InferenceConfig(
        schedule=TriggeringSchedule(steps=((300, 100000),), unconditional_after=500)
    )
)


@pytest.fixture(scope="module")
def jobs(tmp_path_factory):
    import os

    previous = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = str(tmp_path_factory.mktemp("fleet_cache"))
    try:
        return build_session_jobs(_CORPUS)
    finally:
        if previous is None:
            del os.environ["REPRO_TRACE_CACHE"]
        else:
            os.environ["REPRO_TRACE_CACHE"] = previous


class TestFleetParity:
    def test_swifted_fleet_matches_sequential_byte_identically(self, jobs):
        sequential = replay_jobs(jobs, workers=1, swift_config=_SWIFT)
        fleet = replay_jobs(jobs, workers=4, swift_config=_SWIFT)
        assert fleet.workers == 4 and sequential.workers == 1
        assert pickle.dumps(fleet.signature()) == pickle.dumps(sequential.signature())
        assert fleet.reroutes > 0, "the corpus must exercise the reroute path"
        assert [r.peer_as for r in fleet.sessions] == sorted(
            r.peer_as for r in fleet.sessions
        )

    def test_speaker_only_fleet_matches_sequential(self, jobs):
        sequential = replay_jobs(jobs, workers=1, swifted=False)
        fleet = replay_jobs(jobs, workers=4, swifted=False)
        assert pickle.dumps(fleet.signature()) == pickle.dumps(sequential.signature())
        assert fleet.losses > 0, "withdrawal bursts must surface loss events"
        assert fleet.loss_events == sequential.loss_events
        assert fleet.recovery_events == sequential.recovery_events

    def test_aggregates_sum_per_session_counters(self, jobs):
        fleet = replay_jobs(jobs, workers=2, swifted=False)
        assert fleet.message_count == sum(r.message_count for r in fleet.sessions)
        assert fleet.losses == sum(r.losses for r in fleet.sessions)
        assert sum(count for _, count in fleet.loss_events) == fleet.losses

    def test_format_fleet_result_renders_all_sessions(self, jobs):
        fleet = replay_jobs(jobs, workers=1, swifted=False)
        rendered = format_fleet_result(fleet)
        for session in fleet.sessions:
            assert str(session.peer_as) in rendered
        assert "total" in rendered

    def test_replay_fleet_end_to_end(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        config = SyntheticTraceConfig(
            peer_count=2,
            duration_days=1.0,
            min_table_size=400,
            max_table_size=800,
            noise_rate_per_second=0.02,
            seed=23,
        )
        result = replay_fleet(config, workers=2, swifted=False)
        assert result.session_count == 2
        assert result.message_count > 0


class TestSessionJobs:
    def test_job_payloads_are_raw_buffers(self, jobs):
        job = jobs[0]
        assert isinstance(job.rib_prefix, bytes) and isinstance(job.rib_path, bytes)
        flat = pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        assert b"repro.bgp" not in flat, "jobs must not pickle message objects"

    def test_rib_interned_before_payload_export(self):
        # A RIB prefix that never appears in the stream must still resolve
        # in the worker: interning happens before the payload snapshot.
        stream = ColumnarTrace()
        stream.announce(
            1.0, 9, Prefix.from_string("10.0.0.0/24"),
            PathAttributes(as_path=ASPath([9, 6]), next_hop=9),
        )
        silent_prefix = Prefix.from_string("99.0.0.0/24")
        rib = {silent_prefix: ASPath([9, 8, 7])}
        job = SessionJob.from_stream(9, stream, rib)
        result = replay_stream(
            ColumnarTrace.from_payload(job.payload),
            rib,
            peer_as=9,
            swifted=False,
        )
        assert result.message_count == 1


class TestBackupAlternates:
    def test_colliding_origin_no_longer_builds_a_looped_path(self):
        """Regression: origin == BACKUP_PEER_AS used to yield [64512, 64512]."""
        prefix = Prefix.from_string("10.0.0.0/24")
        rib = {prefix: ASPath([2, 5, BACKUP_PEER_AS])}
        alternates = backup_alternates(rib)
        path = alternates[prefix]
        assert not path.has_loop()
        assert path.asns == (BACKUP_PEER_AS, BACKUP_ORIGIN_AS)

    def test_normal_origin_is_reused(self):
        prefix = Prefix.from_string("10.0.0.0/24")
        alternates = backup_alternates({prefix: ASPath([2, 5, 6])})
        assert alternates[prefix].asns == (BACKUP_PEER_AS, 6)

    def test_empty_path_falls_back_to_synthetic_origin(self):
        prefix = Prefix.from_string("10.0.0.0/24")
        alternates = backup_alternates({prefix: ASPath([])})
        assert alternates[prefix].asns == (BACKUP_PEER_AS, BACKUP_ORIGIN_AS)

    def test_colliding_origin_prefix_is_actually_protected(self):
        """End-to-end: the colliding-origin prefix keeps a usable backup."""
        prefixes = prefix_block("10.0.0.0/24", 8)
        rib = {p: ASPath([2, 5, BACKUP_PEER_AS]) for p in prefixes[:4]}
        rib.update({p: ASPath([2, 5, 6]) for p in prefixes[4:]})
        stream = ColumnarTrace()
        stream.withdraw(1.0, 2, prefixes[0])
        result = replay_stream(stream, rib, peer_as=2, swifted=True)
        assert result.message_count == 1
        # The withdrawal must NOT be a loss of reachability: the backup
        # session still announces a loop-free alternate for the prefix.
        assert result.losses == 0


class TestSpeakerFailureParity:
    """`receive` and the columnar paths must fail identically."""

    def _columnar_run(self, peer_as):
        trace = ColumnarTrace()
        trace.withdraw(1.0, peer_as, Prefix.from_string("10.0.0.0/24"))
        return next(trace.iter_batches())

    def test_unknown_peer_raises_keyerror_on_every_path(self):
        speaker = BGPSpeaker(1)
        speaker.add_peer(2)
        message = Update.withdraw(1.0, 999, Prefix.from_string("10.0.0.0/24"))
        run = self._columnar_run(999)
        with pytest.raises(KeyError, match="999"):
            speaker.receive(message)
        with pytest.raises(KeyError, match="999"):
            speaker.receive_columnar([run])
        with pytest.raises(KeyError, match="999"):
            speaker.begin_batch().add_columnar_run(run)
        with pytest.raises(KeyError, match="999"):
            speaker.receive_batch([message])

    def test_unknown_peer_failure_leaves_no_partial_state(self):
        speaker = BGPSpeaker(1)
        speaker.add_peer(2)
        with pytest.raises(KeyError):
            speaker.receive_columnar([self._columnar_run(999)])
        assert speaker.routed_prefixes() == frozenset()

    def test_empty_batch_is_a_no_op(self):
        speaker = BGPSpeaker(1)
        speaker.add_peer(2)
        assert speaker.receive_batch([]) == []
        assert speaker.begin_batch().commit() == []

    def test_empty_columnar_source_is_a_no_op(self):
        speaker = BGPSpeaker(1)
        speaker.add_peer(2)
        assert speaker.receive_columnar([]) == []
        assert speaker.receive_columnar(ColumnarTrace()) == []


class TestChunkedRuns:
    def _trace(self):
        trace = ColumnarTrace()
        p = prefix_block("10.0.0.0/24", 10)
        for index in range(10):
            trace.withdraw(float(index), 2, p[index])  # one long same-peer run
        trace.withdraw(10.0, 3, p[0])
        return trace

    def test_chunks_smaller_than_a_run_split_without_reordering(self):
        trace = self._trace()
        chunks = list(_chunked_runs(trace, chunk_messages=3))
        assert all(
            sum(len(run) for run in chunk) <= 3 or len(chunk) == 1
            for chunk in chunks
        )
        replayed = [
            message
            for chunk in chunks
            for run in chunk
            for message in run
        ]
        assert replayed == trace.to_messages()

    def test_chunked_replay_matches_unchunked(self):
        # Single-peer trace: replay_stream configures only one session.
        trace = ColumnarTrace()
        p = prefix_block("10.0.0.0/24", 10)
        attrs = PathAttributes(as_path=ASPath([2, 5, 6]), next_hop=2)
        for index in range(10):
            trace.announce(float(index), 2, p[index], attrs)
        rib = {}
        small = replay_stream(
            trace, rib, peer_as=2, swifted=False, chunk_messages=2, collect_events=True
        )
        big = replay_stream(
            trace, rib, peer_as=2, swifted=False, chunk_messages=10 ** 6,
            collect_events=True,
        )
        assert small.message_count == big.message_count == trace.message_count
        assert small.chunks > big.chunks
        assert small.signature() == big.signature()

    def test_empty_stream_yields_no_chunks(self):
        assert list(_chunked_runs(ColumnarTrace(), chunk_messages=5)) == []
