"""Tests for RIBs, decision process, sessions and the BGP speaker."""

import pytest

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.decision import DecisionProcess, gao_rexford_ranking
from repro.bgp.messages import (
    KeepAlive,
    Notification,
    Update,
    iter_withdrawn_prefixes,
    split_update,
)
from repro.bgp.prefix import Prefix, prefix_block
from repro.bgp.rib import AdjRibIn, LocRib, RibEntry, RouteChangeKind
from repro.bgp.session import PeeringSession, SessionState
from repro.bgp.speaker import BGPSpeaker


def _attrs(path, next_hop=None, local_pref=100):
    as_path = ASPath(path)
    return PathAttributes(
        as_path=as_path, next_hop=next_hop or as_path.first_hop, local_pref=local_pref
    )


PFX = prefix_block("10.0.0.0/24", 50)


class TestAdjRibIn:
    def test_announce_withdraw_cycle(self):
        rib = AdjRibIn(peer_as=2)
        change = rib.announce(PFX[0], _attrs([2, 5, 6]))
        assert change.kind == RouteChangeKind.NEW
        change = rib.announce(PFX[0], _attrs([2, 3, 6]))
        assert change.kind == RouteChangeKind.UPDATED
        change = rib.withdraw(PFX[0])
        assert change.kind == RouteChangeKind.WITHDRAWN
        assert rib.withdraw(PFX[0]).kind == RouteChangeKind.UNCHANGED

    def test_link_index_tracks_paths(self):
        rib = AdjRibIn(peer_as=2)
        for prefix in PFX[:10]:
            rib.announce(prefix, _attrs([2, 5, 6]))
        for prefix in PFX[10:15]:
            rib.announce(prefix, _attrs([2, 3, 7]))
        assert rib.prefix_count_via_link((5, 6)) == 10
        assert rib.prefix_count_via_link((6, 5)) == 10
        assert rib.prefix_count_via_link((3, 7)) == 5
        rib.withdraw(PFX[0])
        assert rib.prefix_count_via_link((5, 6)) == 9
        # Re-announcing over a new path moves the prefix between links.
        rib.announce(PFX[1], _attrs([2, 3, 7]))
        assert rib.prefix_count_via_link((5, 6)) == 8
        assert rib.prefix_count_via_link((3, 7)) == 6

    def test_prefixes_via_as(self):
        rib = AdjRibIn(peer_as=2)
        rib.announce(PFX[0], _attrs([2, 5, 6]))
        rib.announce(PFX[1], _attrs([2, 3, 7]))
        assert rib.prefixes_via_as(5) == frozenset({PFX[0]})


class TestDecisionProcess:
    def test_prefers_local_pref_then_length(self):
        process = DecisionProcess()
        entries = [
            RibEntry(PFX[0], _attrs([2, 5, 6], local_pref=100), 2),
            RibEntry(PFX[0], _attrs([3, 6], local_pref=100), 3),
            RibEntry(PFX[0], _attrs([4, 5, 9, 6], local_pref=200), 4),
        ]
        assert process.select(entries).peer_as == 4
        # Without the local-pref boost the shortest path wins.
        entries[2] = RibEntry(PFX[0], _attrs([4, 5, 6], local_pref=100), 4)
        assert process.select(entries).peer_as == 3

    def test_discards_looped_paths(self):
        process = DecisionProcess()
        looped = RibEntry(PFX[0], _attrs([2, 5, 2]), 2)
        assert process.select([looped]) is None

    def test_gao_rexford_ranking_prefers_customer(self):
        relationships = {2: 2, 3: 0}  # 2 = provider, 3 = customer
        process = DecisionProcess(gao_rexford_ranking(lambda asn: relationships[asn]))
        entries = [
            RibEntry(PFX[0], _attrs([2, 6]), 2),
            RibEntry(PFX[0], _attrs([3, 5, 6]), 3),
        ]
        assert process.select(entries).peer_as == 3


class TestMessages:
    def test_split_update(self):
        update = Update.withdraw_many(0.0, 2, PFX[:10])
        chunks = split_update(update, 3)
        assert sum(c.prefix_count for c in chunks) == 10
        assert all(c.prefix_count <= 3 for c in chunks)

    def test_split_update_invalid(self):
        with pytest.raises(ValueError):
            split_update(Update.withdraw(0.0, 2, PFX[0]), 0)

    def test_iter_withdrawn(self):
        messages = [Update.withdraw(1.0, 2, PFX[0]), KeepAlive(2.0, 2)]
        assert list(iter_withdrawn_prefixes(messages)) == [(1.0, 2, PFX[0])]


class TestPeeringSession:
    def test_processing_updates_rib_and_stats(self):
        session = PeeringSession(1, 2)
        session.establish()
        session.process(Update.announce(1.0, 2, PFX[0], _attrs([2, 6])))
        session.process(Update.withdraw(2.0, 2, PFX[0]))
        assert session.stats.announcements_received == 1
        assert session.stats.withdrawals_received == 1
        assert len(session.rib_in) == 0

    def test_notification_resets_rib(self):
        session = PeeringSession(1, 2)
        session.establish()
        session.process(Update.announce(1.0, 2, PFX[0], _attrs([2, 6])))
        session.process(Notification(timestamp=2.0, peer_as=2))
        assert session.state == SessionState.CLOSED
        assert len(session.rib_in) == 0
        assert session.stats.session_resets == 1

    def test_observers_invoked(self):
        session = PeeringSession(1, 2)
        session.establish()
        seen = []
        session.add_observer(lambda s, m, c: seen.append(len(c)))
        session.process(Update.announce(1.0, 2, PFX[0], _attrs([2, 6])))
        assert seen == [1]

    def test_stream_window_and_counts(self):
        session = PeeringSession(1, 2)
        session.establish(timestamp=0.0)
        for index, prefix in enumerate(PFX[:10]):
            session.process(Update.withdraw(float(index), 2, prefix))
        assert session.stream.withdrawal_count() == 10
        assert session.stream.withdrawals_in_window(0.0, 5.0) == 5


class TestBGPSpeaker:
    def test_best_route_changes_on_withdrawal(self):
        speaker = BGPSpeaker(1)
        speaker.add_peer(2)
        speaker.add_peer(3)
        speaker.receive(Update.announce(0.0, 2, PFX[0], _attrs([2, 5, 6], local_pref=200)))
        speaker.receive(Update.announce(0.0, 3, PFX[0], _attrs([3, 6])))
        assert speaker.best_route(PFX[0]).peer_as == 2
        changes = speaker.receive(Update.withdraw(1.0, 2, PFX[0]))
        assert len(changes) == 1
        assert changes[0].new.peer_as == 3
        assert speaker.best_route(PFX[0]).peer_as == 3

    def test_loss_of_reachability(self):
        speaker = BGPSpeaker(1)
        speaker.add_peer(2)
        speaker.receive(Update.announce(0.0, 2, PFX[0], _attrs([2, 6])))
        changes = speaker.receive(Update.withdraw(1.0, 2, PFX[0]))
        assert changes[0].is_loss_of_reachability
        assert speaker.best_route(PFX[0]) is None

    def test_alternate_routes_sorted_by_preference(self):
        speaker = BGPSpeaker(1)
        for peer in (2, 3, 4):
            speaker.add_peer(peer)
        speaker.receive(Update.announce(0.0, 2, PFX[0], _attrs([2, 5, 6], local_pref=300)))
        speaker.receive(Update.announce(0.0, 3, PFX[0], _attrs([3, 6])))
        speaker.receive(Update.announce(0.0, 4, PFX[0], _attrs([4, 5, 6])))
        alternates = speaker.alternate_routes(PFX[0])
        assert [entry.peer_as for entry in alternates] == [3, 4]

    def test_unknown_peer_raises(self):
        speaker = BGPSpeaker(1)
        with pytest.raises(KeyError):
            speaker.receive(Update.withdraw(0.0, 9, PFX[0]))

    def test_remove_peer_withdraws_routes(self):
        speaker = BGPSpeaker(1)
        speaker.add_peer(2)
        speaker.receive(Update.announce(0.0, 2, PFX[0], _attrs([2, 6])))
        changes = speaker.remove_peer(2)
        assert changes and changes[0].new is None
