"""Fault-injection matrix: self-healing fleet replay, checksummed store,
quarantining cache and validated ingestion.

Crosses the injected failure modes {worker crash, hard worker kill, worker
hang, IO error, corrupted blob, malformed rows} with {strict, lenient}
handling and asserts the recovery contract: retried runs stay
byte-identical to fault-free ones, degraded runs name exactly their
casualties, damaged blobs are quarantined and rebuilt, and malformed rows
are rejected (strict) or counted-and-skipped (lenient).  An end-to-end
subprocess test arms the harness purely through ``REPRO_FAULTS`` /
``REPRO_FAULT_SEED`` and proves a faulted fleet replay exits cleanly — no
hang, no zombie workers.
"""

import logging
import os
import pickle
import subprocess
import sys
import textwrap

import pytest

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.prefix import Prefix, prefix_block
from repro.replay.fleet import (
    FailedSession,
    FleetReplayError,
    RetryPolicy,
    SessionJob,
    replay_jobs,
)
from repro.testing.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    corrupt_file,
)
from repro.traces import columnar_store, trace_cache
from repro.traces.columnar import ColumnarTrace
from repro.traces.mrt import TraceReader, TraceRecord, records_to_columnar
from repro.traces.validation import TraceValidationError, ValidationReport

pytestmark = pytest.mark.faults


def _make_trace(peer_as: int, messages: int = 6) -> ColumnarTrace:
    """A tiny deterministic single-session stream."""
    trace = ColumnarTrace()
    attributes = PathAttributes(as_path=ASPath([peer_as, 5, 6]), next_hop=peer_as)
    prefixes = prefix_block(f"10.{peer_as % 200}.0.0/24", messages)
    for index, prefix in enumerate(prefixes):
        trace.announce(float(index), peer_as, prefix, attributes)
    trace.withdraw(float(messages), peer_as, prefixes[0])
    return trace


def _make_jobs(peer_ases) -> list:
    return [
        SessionJob.from_stream(peer_as, _make_trace(peer_as), {})
        for peer_as in peer_ases
    ]


def _signature(result) -> bytes:
    return pickle.dumps(result.signature())


@pytest.fixture(scope="module")
def jobs():
    return _make_jobs([11, 12, 13])


@pytest.fixture(scope="module")
def baseline(jobs):
    """The fault-free sequential run every recovery test compares against."""
    return replay_jobs(jobs, workers=1, swifted=False)


class TestWorkerSizing:
    @pytest.mark.parametrize("workers", [0, -1, -7])
    def test_non_positive_workers_raise(self, workers):
        with pytest.raises(ValueError, match="positive integer"):
            replay_jobs([], workers=workers)

    @pytest.mark.parametrize("workers", [True, False, 2.0, "2"])
    def test_non_integer_workers_raise(self, workers):
        with pytest.raises(ValueError, match="positive integer"):
            replay_jobs([], workers=workers)


class TestFaultPlanConfig:
    def test_plan_round_trips_through_environment(self):
        plan = FaultPlan(
            seed=42,
            specs=(
                FaultSpec("kill", "fleet.worker", times=2, match="session:1[12]"),
                FaultSpec("hang", "fleet.worker", hang_seconds=7.5),
                FaultSpec("corrupt", "cache.write", rate=0.5),
            ),
        )
        assert FaultPlan.from_env(plan.to_env()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meltdown", "fleet.worker")
        with pytest.raises(ValueError, match="malformed fault spec"):
            FaultSpec.from_text("no-site-here")

    def test_rate_selects_the_same_keys_everywhere(self):
        plan = FaultPlan(seed=9, specs=(FaultSpec("crash", "fleet.worker", rate=0.5),))
        picks = [
            FaultInjector(plan).check("fleet.worker", key=f"session:{peer}", attempt=0)
            is not None
            for peer in range(40)
        ]
        # Deterministic and non-trivial: some keys selected, some spared,
        # identically for every fresh injector (i.e. every process).
        assert any(picks) and not all(picks)
        repeat = [
            FaultInjector(plan).check("fleet.worker", key=f"session:{peer}", attempt=0)
            is not None
            for peer in range(40)
        ]
        assert repeat == picks


class TestCrashRecovery:
    def test_pool_crash_is_retried_to_byte_identical_result(self, jobs, baseline):
        plan = FaultPlan(
            specs=(FaultSpec("crash", "fleet.worker", times=1, match="session:11"),)
        )
        result = replay_jobs(jobs, workers=2, swifted=False, fault_plan=plan)
        assert result.retries >= 1
        assert not result.degraded
        assert _signature(result) == _signature(baseline)

    def test_inline_crash_is_retried_to_byte_identical_result(self, jobs, baseline):
        plan = FaultPlan(
            specs=(FaultSpec("crash", "fleet.worker", times=1, match="session:12"),)
        )
        result = replay_jobs(jobs, workers=1, swifted=False, fault_plan=plan)
        assert result.retries == 1
        assert _signature(result) == _signature(baseline)

    def test_inline_kill_downgrades_instead_of_exiting_this_process(self, jobs):
        # ``kill`` outside a supervised pool worker must not take the test
        # process down; with an unretryable spec it degrades instead.
        plan = FaultPlan(
            specs=(FaultSpec("kill", "fleet.worker", times=99, match="session:11"),)
        )
        result = replay_jobs(
            jobs, workers=1, swifted=False, strict=False, fault_plan=plan
        )
        assert [failed.peer_as for failed in result.failed_sessions] == [11]

    def test_strict_raises_after_exhausted_attempts(self, jobs):
        plan = FaultPlan(specs=(FaultSpec("crash", "fleet.worker", times=99),))
        with pytest.raises(FleetReplayError, match="failed after"):
            replay_jobs(jobs, workers=1, swifted=False, fault_plan=plan)
        with pytest.raises(FleetReplayError, match="failed after"):
            replay_jobs(jobs, workers=2, swifted=False, fault_plan=plan)


class TestHardFailureRecovery:
    def test_killed_workers_break_the_pool_and_jobs_are_resubmitted(
        self, jobs, baseline
    ):
        # The acceptance scenario: a seeded injector hard-kills 2 of N
        # workers; the driver rebuilds the pool, resubmits, and the final
        # signature is byte-identical to the fault-free sequential run.
        plan = FaultPlan(
            seed=7,
            specs=(FaultSpec("kill", "fleet.worker", times=1, match="session:1[12]"),),
        )
        result = replay_jobs(jobs, workers=2, swifted=False, fault_plan=plan)
        assert result.pool_restarts >= 1
        assert result.retries >= 1
        assert not result.degraded
        assert _signature(result) == _signature(baseline)

    def test_hung_worker_is_reclaimed_within_the_timeout(self, jobs, baseline):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "hang", "fleet.worker", times=1, match="session:11", hang_seconds=25.0
                ),
            )
        )
        result = replay_jobs(
            jobs, workers=2, swifted=False, fault_plan=plan, timeout=2.0
        )
        # Reclaiming a hung worker kills its process, so the pool restarts
        # and the job retries — far faster than the 25 s injected sleep
        # (the suite's duration budget would catch a driver that waited).
        assert result.pool_restarts >= 1
        assert result.retries >= 1
        assert not result.degraded
        assert _signature(result) == _signature(baseline)


class TestGracefulDegradation:
    def test_lenient_run_names_exactly_the_failed_sessions(self, jobs, baseline):
        plan = FaultPlan(
            specs=(FaultSpec("crash", "fleet.worker", times=99, match="session:12"),)
        )
        result = replay_jobs(
            jobs, workers=2, swifted=False, strict=False, fault_plan=plan
        )
        assert result.degraded
        assert [failed.peer_as for failed in result.failed_sessions] == [12]
        assert result.failed_sessions[0].attempts == RetryPolicy().max_attempts
        assert [session.peer_as for session in result.sessions] == [11, 13]
        # A degraded signature carries an explicit marker naming the
        # casualties — it can never pass for the complete run.
        assert _signature(result) != _signature(baseline)
        assert result.signature()[1] == ("degraded", (12,))

    def test_failed_session_records_the_error(self, jobs):
        plan = FaultPlan(specs=(FaultSpec("crash", "fleet.worker", times=99),))
        result = replay_jobs(
            jobs, workers=1, swifted=False, strict=False, fault_plan=plan
        )
        assert len(result.failed_sessions) == len(jobs)
        for failed in result.failed_sessions:
            assert isinstance(failed, FailedSession)
            assert "injected crash" in failed.error


class TestStoreIntegrity:
    def _write(self, path, store_version=columnar_store.STORE_VERSION):
        trace = _make_trace(11)
        columnar_store.write_trace(path, trace, store_version=store_version)
        return trace

    def test_flipped_column_byte_fails_the_crc(self, tmp_path):
        path = str(tmp_path / "trace.cols")
        self._write(path)
        corrupt_file(path, offset=os.path.getsize(path) - 1)
        with pytest.raises(columnar_store.CorruptColumnStoreError, match="checksum"):
            columnar_store.read_trace(path)

    def test_flipped_header_byte_fails_at_open(self, tmp_path):
        path = str(tmp_path / "trace.cols")
        self._write(path)
        corrupt_file(path, offset=40)  # inside the pickled header
        with pytest.raises(columnar_store.CorruptColumnStoreError):
            columnar_store.ColumnarTraceFile(path)

    def test_truncated_blob_fails_at_open(self, tmp_path):
        path = str(tmp_path / "trace.cols")
        self._write(path)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 8)
        with pytest.raises(columnar_store.CorruptColumnStoreError, match="truncated"):
            columnar_store.ColumnarTraceFile(path)

    def test_v1_blob_still_readable(self, tmp_path):
        path = str(tmp_path / "trace.cols")
        original = self._write(path, store_version=1)
        restored = columnar_store.read_trace(path)
        assert restored.to_payload() == original.to_payload()

    def test_v2_round_trip_is_lossless(self, tmp_path):
        path = str(tmp_path / "trace.cols")
        original = self._write(path)
        assert columnar_store.read_trace(path).to_payload() == original.to_payload()


class TestCacheQuarantine:
    def _load(self, builds):
        def builder():
            builds.append(1)
            return _make_trace(11)

        return trace_cache.load_or_build_columnar(
            "faults-test", "spec", builder, format_version=1
        )

    def test_corrupt_blob_is_quarantined_rebuilt_and_logged_once(
        self, tmp_path, monkeypatch, caplog
    ):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        builds = []
        first = self._load(builds)
        assert builds == [1]
        path = trace_cache.cache_path_for(
            "faults-test", "spec", format_version=1, suffix=".cols"
        )
        corrupt_file(path, offset=os.path.getsize(path) - 1)
        with caplog.at_level(logging.WARNING, logger="repro.traces.trace_cache"):
            second = self._load(builds)
            third = self._load(builds)
        assert builds == [1, 1], "corruption must be a miss exactly once"
        assert os.path.exists(path + ".corrupt"), "bad blob kept for post-mortem"
        assert second.to_payload() == first.to_payload()
        assert third.to_payload() == first.to_payload()
        warnings = [r for r in caplog.records if "quarantined" in r.getMessage()]
        assert len(warnings) == 1, "quarantine must log once per entry"

    def test_truncated_blob_is_treated_as_a_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        builds = []
        self._load(builds)
        path = trace_cache.cache_path_for(
            "faults-test", "spec", format_version=1, suffix=".cols"
        )
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 4)
        self._load(builds)
        assert builds == [1, 1]
        assert os.path.exists(path), "entry rebuilt under the original name"

    def test_injected_write_corruption_heals_on_the_next_load(
        self, tmp_path, monkeypatch
    ):
        # Arm the harness through the environment only: the cache.write
        # hook corrupts the first written blob; the next load detects it,
        # quarantines and rebuilds a clean one.
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_FAULTS", "corrupt@cache.write;times=1")
        monkeypatch.setenv("REPRO_FAULT_SEED", "5")
        builds = []
        self._load(builds)
        second = self._load(builds)
        assert builds == [1, 1]
        path = trace_cache.cache_path_for(
            "faults-test", "spec", format_version=1, suffix=".cols"
        )
        assert os.path.exists(path + ".corrupt")
        assert second.to_payload() == _make_trace(11).to_payload()
        third = self._load(builds)
        assert builds == [1, 1], "the healed entry must serve as a hit"
        assert third.to_payload() == second.to_payload()

    def test_injected_write_io_error_degrades_to_uncached(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_FAULTS", "io_error@cache.write;times=99")
        builds = []
        value = self._load(builds)
        self._load(builds)
        assert builds == [1, 1], "failed writes degrade to rebuild-per-load"
        assert value.to_payload() == _make_trace(11).to_payload()
        path = trace_cache.cache_path_for(
            "faults-test", "spec", format_version=1, suffix=".cols"
        )
        assert not os.path.exists(path)


class TestIngestionValidation:
    def test_malformed_lines_raise_typed_errors(self):
        for line in ("garbage", "A|x|2|10.0.0.0/24|2 5 6", "A|1.0|2||", "Z|1.0|2||"):
            with pytest.raises(TraceValidationError) as caught:
                TraceRecord.from_line(line)
            assert caught.value.reason == "malformed-line"

    def test_lenient_reader_counts_and_skips_bad_lines(self, tmp_path):
        good = [
            TraceRecord("A", 1.0, 2, Prefix.from_string("10.0.0.0/24"), ASPath([2, 6])),
            TraceRecord("W", 2.0, 2, Prefix.from_string("10.0.0.0/24")),
        ]
        path = tmp_path / "dump.txt"
        path.write_text(
            "\n".join([good[0].to_line(), "garbage", good[1].to_line(), "A|x|2||"])
            + "\n"
        )
        report = ValidationReport(lenient=True)
        records = list(TraceReader(str(path), report=report))
        assert [record.type for record in records] == ["A", "W"]
        assert report.skipped["malformed-line"] == 2
        assert "garbage" in report.examples["malformed-line"]
        # Strict reader: same file, first bad line raises.
        with pytest.raises(TraceValidationError):
            list(TraceReader(str(path)))

    def test_records_to_columnar_rejects_non_monotone_timestamps(self):
        prefix = Prefix.from_string("10.0.0.0/24")
        records = [
            TraceRecord("A", 5.0, 2, prefix, ASPath([2, 6])),
            TraceRecord("A", 1.0, 2, prefix, ASPath([2, 6])),
        ]
        with pytest.raises(TraceValidationError, match="non-monotone"):
            records_to_columnar(records)
        report = ValidationReport(lenient=True)
        trace = records_to_columnar(records, report=report)
        assert trace.message_count == 1
        assert report.skipped["non-monotone-timestamp"] == 1

    def test_records_to_columnar_rejects_non_positive_peers(self):
        record = TraceRecord("W", 1.0, 0, Prefix.from_string("10.0.0.0/24"))
        with pytest.raises(TraceValidationError, match="invalid-peer"):
            records_to_columnar([record])
        report = ValidationReport(lenient=True)
        assert records_to_columnar([record], report=report).message_count == 0

    def test_payload_with_unknown_kind_byte(self):
        payload = _make_trace(11).to_payload()
        tampered = bytearray(payload["msg_kind"])
        tampered[2] = 9
        payload["msg_kind"] = bytes(tampered)
        with pytest.raises(TraceValidationError, match="unknown-kind"):
            ColumnarTrace.from_payload(payload, validate="strict")
        report = ValidationReport(lenient=True)
        trace = ColumnarTrace.from_payload(payload, validate="lenient", report=report)
        assert report.skipped["unknown-kind"] == 1
        assert trace.message_count == _make_trace(11).message_count - 1

    def test_out_of_range_intern_id_detected(self):
        trace = _make_trace(11)
        trace.ann_attr[0] = 10_000
        with pytest.raises(TraceValidationError, match="out-of-range-intern-id"):
            trace.validated()
        lenient = trace.validated(lenient=True)
        assert lenient.message_count == trace.message_count - 1

    def test_inconsistent_bounds_detected_and_dropped(self):
        trace = _make_trace(11)
        trace.wd_end[0] = 999
        with pytest.raises(TraceValidationError, match="inconsistent-bounds"):
            trace.validated()
        report = ValidationReport(lenient=True)
        lenient = trace.validated(lenient=True, report=report)
        assert report.skipped["inconsistent-bounds"] == 1
        assert lenient.message_count == trace.message_count - 1

    def test_lenient_drop_preserves_the_surviving_rows_exactly(self):
        trace = _make_trace(11)
        tampered = _make_trace(11)
        tampered.msg_peer[3] = -5
        survived = tampered.validated(lenient=True)
        kept = [
            message
            for index, message in enumerate(trace.to_messages())
            if index != 3
        ]
        assert survived.to_messages() == kept

    def test_clean_trace_validates_to_itself(self):
        trace = _make_trace(11)
        report = ValidationReport(lenient=True)
        assert trace.validated(lenient=True, report=report) is trace
        assert report.clean and report.checked == trace.message_count

    def test_fleet_worker_validates_payloads_when_asked(self, jobs):
        bad_payload = _make_trace(14).to_payload()
        tampered = bytearray(bad_payload["msg_kind"])
        tampered[1] = 200
        bad_payload["msg_kind"] = bytes(tampered)
        bad_job = SessionJob(
            peer_as=14, payload=bad_payload, rib_prefix=b"", rib_path=b""
        )
        with pytest.raises(FleetReplayError):
            replay_jobs([bad_job], workers=1, swifted=False, validate="strict", retry=0)
        lenient = replay_jobs([bad_job], workers=1, swifted=False, validate="lenient")
        assert lenient.sessions[0].message_count == _make_trace(14).message_count - 1
        with pytest.raises(ValueError, match="validate"):
            replay_jobs([], validate="sometimes")


_E2E_SCRIPT = textwrap.dedent(
    """
    from repro.bgp.attributes import ASPath, PathAttributes
    from repro.bgp.prefix import prefix_block
    from repro.replay.fleet import SessionJob, replay_jobs
    from repro.traces.columnar import ColumnarTrace

    def make_job(peer_as):
        trace = ColumnarTrace()
        attributes = PathAttributes(as_path=ASPath([peer_as, 5, 6]), next_hop=peer_as)
        for index, prefix in enumerate(prefix_block("10.%d.0.0/24" % peer_as, 5)):
            trace.announce(float(index), peer_as, prefix, attributes)
        return SessionJob.from_stream(peer_as, trace, {})

    jobs = [make_job(peer_as) for peer_as in (11, 12, 13)]
    result = replay_jobs(jobs, workers=2, swifted=False, strict=False, timeout=2.0)
    assert result.session_count == 3, result.failed_sessions
    assert not result.degraded, result.failed_sessions
    assert result.retries >= 1, "the environment plan must have fired"
    print("fault-e2e OK retries=%d restarts=%d" % (result.retries, result.pool_restarts))
    """
)


def test_environment_armed_fleet_replay_exits_cleanly():
    """End-to-end: REPRO_FAULTS alone kills/hangs workers; the run degrades
    gracefully, exits 0 within the deadline and leaves no zombie workers
    (a clean interpreter exit joins every pool process)."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src
    env["REPRO_FAULTS"] = (
        "kill@fleet.worker;times=1;match=session:11,"
        "hang@fleet.worker;times=1;match=session:12;hang=30"
    )
    env["REPRO_FAULT_SEED"] = "3"
    env["REPRO_TRACE_CACHE"] = "off"
    completed = subprocess.run(
        [sys.executable, "-c", _E2E_SCRIPT],
        capture_output=True,
        text=True,
        timeout=60,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr or completed.stdout
    assert "fault-e2e OK" in completed.stdout
