"""Tests for the trace substrate: MRT format, topologies, generator, bursts."""

import io
import random

import pytest

from repro.bgp.attributes import ASPath
from repro.bgp.messages import Update
from repro.bgp.prefix import Prefix
from repro.traces.bursts import Burst, BurstExtractionConfig, BurstExtractor
from repro.traces.collectors import all_peers, build_collector_fleet
from repro.traces.mrt import TraceReader, TraceRecord, TraceWriter, messages_to_records, records_to_messages
from repro.traces.popularity import POPULAR_ORGANIZATIONS, all_popular_asns, is_popular_asn, organization_of
from repro.traces.session_topology import SessionTopology, SessionTopologyConfig
from repro.traces.synthetic import SyntheticTraceConfig, SyntheticTraceGenerator


class TestMrtFormat:
    def test_record_roundtrip(self):
        record = TraceRecord(
            type="A",
            timestamp=12.5,
            peer_as=3356,
            prefix=Prefix.from_string("10.0.0.0/24"),
            as_path=ASPath([3356, 15169]),
        )
        assert TraceRecord.from_line(record.to_line()) == record

    def test_withdrawal_record(self):
        record = TraceRecord(
            type="W", timestamp=1.0, peer_as=2, prefix=Prefix.from_string("10.0.0.0/24")
        )
        assert "W|" in record.to_line()

    def test_invalid_records(self):
        with pytest.raises(ValueError):
            TraceRecord(type="X", timestamp=0.0, peer_as=1)
        with pytest.raises(ValueError):
            TraceRecord(type="A", timestamp=0.0, peer_as=1)  # missing prefix/path
        with pytest.raises(ValueError):
            TraceRecord.from_line("bad line")

    def test_writer_reader_roundtrip_via_file_object(self):
        buffer = io.StringIO()
        records = [
            TraceRecord(type="W", timestamp=float(i), peer_as=2,
                        prefix=Prefix.from_string(f"10.0.{i}.0/24"))
            for i in range(5)
        ]
        writer = TraceWriter(buffer)
        writer.write_all(records)
        buffer.seek(0)
        read_back = TraceReader(buffer).read_all()
        assert read_back == records

    def test_message_conversion_roundtrip(self):
        messages = [
            Update.withdraw(1.0, 2, Prefix.from_string("10.0.0.0/24")),
            Update.announce(
                2.0,
                2,
                Prefix.from_string("10.0.1.0/24"),
                __import__("repro.bgp.attributes", fromlist=["PathAttributes"]).PathAttributes(
                    as_path=ASPath([2, 6]), next_hop=2
                ),
            ),
        ]
        records = messages_to_records(messages)
        back = records_to_messages(records)
        assert len(back) == 2
        assert back[0].withdrawals and back[1].announcements


class TestPopularity:
    def test_known_asns(self):
        assert is_popular_asn(15169)
        assert organization_of(15169) == "Google"
        assert not is_popular_asn(64512)
        assert len(POPULAR_ORGANIZATIONS) == 15
        assert len(all_popular_asns()) >= 15


class TestCollectors:
    def test_fleet_shape(self):
        fleet = build_collector_fleet(peer_count=50, seed=1, flapping_peers=3)
        peers = [peer for collector in fleet for peer in collector.peers]
        assert len(peers) == 50
        assert sum(1 for peer in peers if peer.flapping) == 3
        assert len(all_peers(fleet, exclude_flapping=True)) == 47
        assert all(peer.table_size >= 4000 for peer in peers)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            build_collector_fleet(peer_count=0)


class TestSessionTopology:
    def test_structure_and_rib(self):
        topology = SessionTopology(SessionTopologyConfig(total_prefixes=2000, seed=1))
        assert topology.prefix_count == 2000
        # Every RIB path starts at the peer AS.
        for path in list(topology.rib.values())[:100]:
            assert path.first_hop == topology.peer_as
        counts = topology.link_prefix_counts()
        assert sum(1 for c in counts.values() if c > 0) > 10

    def test_prefixes_below_and_via_link(self):
        topology = SessionTopology(SessionTopologyConfig(total_prefixes=500, seed=2))
        counts = topology.link_prefix_counts()
        link = max(counts, key=counts.get)
        child = topology.child_of_link(link)
        via = topology.prefixes_via_link(link)
        below = topology.prefixes_below(child)
        assert set(via) == set(below)
        assert len(via) == counts[link]

    def test_reroute_path_avoids_failed_subtree(self):
        topology = SessionTopology(
            SessionTopologyConfig(total_prefixes=500, seed=3, alternate_probability=1.0)
        )
        counts = topology.link_prefix_counts()
        link = max(counts, key=counts.get)
        child = topology.child_of_link(link)
        subtree = topology.subtree(child)
        prefixes = topology.prefixes_below(child)
        rerouted = topology.reroute_path(topology.origin_of(prefixes[0]), child, subtree)
        if rerouted is not None:
            links = rerouted.links()
            canonical = link if link[0] <= link[1] else (link[1], link[0])
            assert canonical not in links

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SessionTopologyConfig(total_prefixes=0)


class TestSyntheticTrace:
    def test_generation_and_consistency(self):
        config = SyntheticTraceConfig(
            peer_count=3, duration_days=5, min_table_size=2000, max_table_size=6000,
            noise_rate_per_second=0.0, seed=5,
        )
        trace = SyntheticTraceGenerator(config).generate()
        assert len(trace.peers) == 3
        for burst in trace.bursts:
            assert burst.size >= config.burst_size_minimum
            rib = trace.rib_of(burst.peer.peer_as)
            # Withdrawn prefixes existed in the pre-trace RIB.
            assert burst.withdrawn_prefixes <= set(rib)
            # Withdrawn prefixes all crossed the failed link.
            failed = burst.failed_link
            sample = list(burst.withdrawn_prefixes)[:50]
            assert all(failed in rib[p].links() for p in sample)

    def test_single_burst_generation(self):
        generator = SyntheticTraceGenerator(SyntheticTraceConfig(seed=9))
        topology = SessionTopology(SessionTopologyConfig(total_prefixes=5000, seed=9))
        burst = generator.generate_burst(topology, target_size=2000, rng=random.Random(1))
        assert burst is not None
        assert burst.size >= 1500
        assert burst.duration > 0

    def test_determinism(self):
        config = SyntheticTraceConfig(
            peer_count=2, duration_days=3, min_table_size=2000, max_table_size=4000,
            noise_rate_per_second=0.0, seed=11,
        )
        first = SyntheticTraceGenerator(config).generate()
        second = SyntheticTraceGenerator(config).generate()
        assert [b.size for b in first.bursts] == [b.size for b in second.bursts]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(peer_count=0)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(withdrawal_fraction=0.0)


class TestBurstExtraction:
    def _stream(self, sizes_and_gaps):
        """Build a stream of withdrawal messages: bursts separated by silence."""
        messages = []
        clock = 0.0
        prefix_index = 0
        for size, gap in sizes_and_gaps:
            for _ in range(size):
                prefix = Prefix((10 << 24) + prefix_index * 256, 24)
                prefix_index += 1
                messages.append(Update.withdraw(clock, 2, prefix))
                clock += 0.002
            clock += gap
        return messages

    def test_extracts_expected_bursts(self):
        extractor = BurstExtractor(BurstExtractionConfig(start_threshold=100, stop_threshold=2))
        messages = self._stream([(500, 60.0), (300, 60.0)])
        bursts = extractor.extract(messages, peer_as=2)
        assert len(bursts) == 2
        assert bursts[0].size == pytest.approx(500, abs=5)
        assert bursts[1].size == pytest.approx(300, abs=5)

    def test_quiet_stream_has_no_burst(self):
        extractor = BurstExtractor()
        messages = self._stream([(100, 60.0)])
        assert extractor.extract(messages, peer_as=2) == []

    def test_head_middle_tail_sums_to_one(self):
        extractor = BurstExtractor(BurstExtractionConfig(start_threshold=50, stop_threshold=2))
        messages = self._stream([(400, 60.0)])
        burst = extractor.extract(messages, peer_as=2)[0]
        head, middle, tail = burst.head_middle_tail()
        assert head + middle + tail == pytest.approx(1.0)

    def test_popular_origin_detection(self):
        rib = {Prefix.from_string("10.0.0.0/24"): ASPath([2, 15169])}
        burst = Burst(
            peer_as=2,
            messages=[Update.withdraw(0.0, 2, Prefix.from_string("10.0.0.0/24"))],
            start_time=0.0,
            end_time=1.0,
        )
        assert burst.touches_popular_origin(rib)
        assert not burst.touches_popular_origin({})

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BurstExtractionConfig(start_threshold=5, stop_threshold=9)
