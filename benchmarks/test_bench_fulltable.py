"""Internet-scale full-table benchmarks (``BENCH_fulltable.json``).

The paper's deployment target is a router carrying a full DFZ table (~1M
routes over several full feeds), not the 4k–30k-prefix tables of the burst
corpus.  This module drives the whole provisioning pipeline at that scale
with the DFZ-shaped synthetic table from :mod:`repro.traces.fulltable`:

* **build + LPM** — generate ~1M prefixes, stream three full feeds through
  the columnar substrate into a :class:`~repro.bgp.speaker.BGPSpeaker`,
  bulk-build the Loc-RIB best trie, and measure longest-prefix-match
  throughput; also measures the path-compressed trie against the per-bit
  reference twin on a sparse sample (sampling keeps the reference's node
  explosion honest — a per-bit trie over a *dense* table shares almost every
  path, which real, registry-scattered tables do not allow);
* **backup aggregation** — profile-grouped backup computation and the
  covering-prefix aggregated table, asserting the >=10x entry reduction and
  byte-identical expansion parity against ``compute_table_reference`` at a
  30k sub-table (the reference is per-prefix and would take minutes at 1M);
* **burst replay** — a 200k-prefix withdrawal burst from one feed replayed
  through the fully-loaded speaker.

All tests are ``slow`` + ``fulltable``; run them with
``pytest -m fulltable benchmarks/test_bench_fulltable.py``.  Scale down via
``REPRO_FULLTABLE_PREFIXES`` (the memory-ratio assertion only arms at the
full default scale).  Results merge into ``BENCH_fulltable.json`` at the
repository root (same pattern as ``BENCH_fleet.json``).
"""

import json
import os
import pickle
import random
import time

import pytest

from conftest import bench_env

from repro.bgp.prefix import random_addresses
from repro.bgp.speaker import BGPSpeaker
from repro.bgp.trie import PrefixTrie
from repro.bgp.trie_reference import ReferencePrefixTrie
from repro.core.backup import BackupComputer
from repro.traces.fulltable import FullTableConfig, FullTableGenerator

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_fulltable.json")

#: Table scale; override with ``REPRO_FULLTABLE_PREFIXES`` for reduced runs.
_PREFIX_COUNT = int(os.environ.get("REPRO_FULLTABLE_PREFIXES", "1000000"))
_LOCAL_AS = 65000

#: Reference-parity scale: ``compute_table_reference`` ranks per prefix (no
#: profile grouping), so byte-parity is asserted on a 30k sub-table.
_PARITY_PREFIX_COUNT = min(30_000, _PREFIX_COUNT)

#: Trie-comparison sample: ~3% of the table (30k at the 1M default), so the
#: sampled prefixes are as unrelated as real tables' neighbouring routes and
#: the per-bit reference cannot amortise shared paths across a dense block.
_TRIE_SAMPLE = max(1, min(30_000, _PREFIX_COUNT // 33))

pytestmark = [pytest.mark.slow, pytest.mark.fulltable]


def _record(key, payload):
    """Merge one benchmark's results into BENCH_fulltable.json."""
    data = {}
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


class _BuiltTable:
    """The full table provisioned end to end, with per-stage timings."""

    def __init__(self, prefix_count):
        config = FullTableConfig(prefix_count=prefix_count)
        started = time.perf_counter()
        self.table = FullTableGenerator(config).generate()
        self.generate_seconds = time.perf_counter() - started

        started = time.perf_counter()
        trace = self.table.columnar_table()
        self.columnar_seconds = time.perf_counter() - started
        self.message_count = len(trace)

        self.speaker = BGPSpeaker(local_as=_LOCAL_AS)
        for peer_as in self.table.peers:
            self.speaker.add_peer(peer_as)
        started = time.perf_counter()
        self.speaker.receive_columnar(trace)
        self.speaker_seconds = time.perf_counter() - started

        self.best = {
            entry.prefix: entry for entry in self.speaker.loc_rib.best_entries()
        }


@pytest.fixture(scope="module")
def built():
    return _BuiltTable(_PREFIX_COUNT)


def test_bench_fulltable_build_and_lpm(built):
    table = built.table
    assert len(built.best) == len(table)

    # Loc-RIB best trie: lazy bulk build over the sorted best routes.
    started = time.perf_counter()
    best_trie = built.speaker.loc_rib.best_trie()
    trie_build_seconds = time.perf_counter() - started
    assert len(best_trie) == len(table)

    # LPM throughput through the compressed trie (addresses drawn inside
    # routed prefixes spread across the whole table).
    probe_prefixes = table.prefixes[:: max(1, len(table) // 50_000)]
    addresses = random_addresses(probe_prefixes, 200_000, random.Random(3))
    lookup = best_trie.lookup
    started = time.perf_counter()
    for address in addresses:
        lookup(address)
    lookup_seconds = time.perf_counter() - started
    lookups_per_second = len(addresses) / lookup_seconds

    # Compressed vs per-bit reference on a sparse sample: identical answers,
    # then the node/memory comparison the compressed trie exists for.
    rng = random.Random(7)
    sample_indexes = sorted(rng.sample(range(len(table)), _TRIE_SAMPLE))
    sample = [(table.prefixes[index], index) for index in sample_indexes]
    compressed = PrefixTrie()
    compressed.build_from_sorted(sample)
    reference = ReferencePrefixTrie()
    for prefix, value in sample:
        reference.insert(prefix, value)
    probe = random_addresses(
        [prefix for prefix, _ in sample[:2000]], 2000, random.Random(11)
    )
    for address in probe:
        assert compressed.lookup(address) == reference.lookup(address)
    node_ratio = reference.node_count() / compressed.node_count()
    memory_ratio = reference.memory_bytes() / compressed.memory_bytes()
    if _PREFIX_COUNT >= 500_000:
        # At reduced scales the fixed 3% sample is too small for a stable
        # ratio; the guarantee is claimed (and asserted) at full scale.
        assert memory_ratio >= 5.0, (
            f"compressed trie must be >=5x smaller than the per-bit "
            f"reference on a sparse sample, got {memory_ratio:.2f}x"
        )
        assert node_ratio >= 3.0

    # "Minutes, not hours" on one CPU for the whole provision.
    total_seconds = (
        built.generate_seconds
        + built.columnar_seconds
        + built.speaker_seconds
        + trie_build_seconds
    )
    assert total_seconds < 600.0

    _record(
        "fulltable.build_and_lpm",
        {
            "prefixes": len(table),
            "peers": len(table.peers),
            "messages": built.message_count,
            "nested_prefixes": table.nested_count(),
            **bench_env(),
            "generate_seconds": round(built.generate_seconds, 3),
            "columnar_seconds": round(built.columnar_seconds, 3),
            "speaker_seconds": round(built.speaker_seconds, 3),
            "speaker_messages_per_second": round(
                built.message_count / built.speaker_seconds
            ),
            "trie_build_seconds": round(trie_build_seconds, 3),
            "trie_nodes": best_trie.node_count(),
            "trie_memory_mb": round(best_trie.memory_bytes() / 1e6, 1),
            "lpm_lookups_per_second": round(lookups_per_second),
            "sample_size": _TRIE_SAMPLE,
            "sample_node_ratio_vs_reference": round(node_ratio, 2),
            "sample_memory_ratio_vs_reference": round(memory_ratio, 2),
        },
    )


def test_bench_fulltable_backup_aggregation(built):
    computer = BackupComputer()
    speaker = built.speaker
    candidate_map = speaker.loc_rib.candidate_map

    started = time.perf_counter()
    grouped = computer.compute_table(
        _LOCAL_AS, built.best, speaker.alternate_routes, candidate_map
    )
    grouped_seconds = time.perf_counter() - started
    grouped_entries = sum(len(per_link) for per_link in grouped.values())

    started = time.perf_counter()
    aggregated = computer.compute_table_aggregated(
        _LOCAL_AS, built.best, speaker.alternate_routes, candidate_map
    )
    aggregated_seconds = time.perf_counter() - started

    # The aggregated table must describe exactly the grouped fan-out ...
    assert aggregated.protected_prefix_count == len(built.best)
    assert aggregated.source_entry_count == grouped_entries
    # ... answer per-prefix queries identically ...
    rng = random.Random(5)
    spot_prefixes = rng.sample(list(built.best), min(2000, len(built.best)))
    for prefix in spot_prefixes:
        assert aggregated.selections_for(prefix) == grouped.get(prefix, {})
    # ... and collapse the nested table by an order of magnitude.
    reduction = aggregated.reduction()
    assert reduction >= 10.0, (
        f"covering-prefix aggregation must shrink the nested full table "
        f">=10x, got {reduction:.2f}x"
    )

    # Byte-identical parity with the per-prefix reference at 30k scale.
    parity = _BuiltTable(_PARITY_PREFIX_COUNT)
    parity_aggregated = computer.compute_table_aggregated(
        _LOCAL_AS, parity.best, parity.speaker.alternate_routes,
        parity.speaker.loc_rib.candidate_map,
    )
    parity_reference = computer.compute_table_reference(
        _LOCAL_AS, parity.best, parity.speaker.alternate_routes
    )
    assert pickle.dumps(parity_aggregated.expand(parity.best)) == pickle.dumps(
        parity_reference
    ), "aggregated expansion must be byte-identical to the reference"

    _record(
        "fulltable.backup_aggregation",
        {
            "protected_prefixes": aggregated.protected_prefix_count,
            **bench_env(),
            "grouped_seconds": round(grouped_seconds, 3),
            "aggregated_seconds": round(aggregated_seconds, 3),
            "source_entries": aggregated.source_entry_count,
            "aggregated_entries": aggregated.entry_count,
            "aggregated_prefixes": aggregated.aggregated_prefix_count,
            "reduction": round(reduction, 2),
            "parity_prefixes": _PARITY_PREFIX_COUNT,
        },
    )


def test_bench_fulltable_burst_replay(built):
    # Runs last in the module: the burst mutates the shared speaker.
    table = built.table
    peer_as = table.peers[0]
    count = min(200_000, len(table))
    burst = table.burst(peer_as, count, start_time=1.0)

    started = time.perf_counter()
    changes = built.speaker.receive_columnar(burst)
    burst_seconds = time.perf_counter() - started

    session = built.speaker.session(peer_as)
    assert table.prefixes[0] not in session.rib_in
    assert table.prefixes[count - 1] not in session.rib_in
    # Other feeds still cover every withdrawn prefix, so nothing went dark.
    losses = [change for change in changes if change.is_loss_of_reachability]
    if len(table.peers) > 1:
        assert not losses

    _record(
        "fulltable.burst_replay",
        {
            "prefixes": len(table),
            "withdrawals": count,
            **bench_env(),
            "burst_seconds": round(burst_seconds, 3),
            "withdrawals_per_second": round(count / burst_seconds),
            "best_route_changes": len(changes),
        },
    )
