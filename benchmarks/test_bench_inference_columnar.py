"""Column-native inference benchmarks, recorded in ``BENCH_inference.json``.

Two costs of an engine-dominated SWIFTED month-slice replay are measured
(marked ``slow``: the slice is month-scale, see ``pytest.ini``):

* **engine stack** — the inference stack (burst detector, fit-score
  calculator, engine) consuming the slice through
  :meth:`~repro.core.inference.InferenceEngine.process_columnar_run`, once
  per available :mod:`repro.core.kernels` backend, versus the per-message
  object path over the materialised stream.  The slice is burst-dominated
  and the detection threshold lowered (as in the coldstart and fleet
  benches) so the engines — not quiet churn — do the work.  Engine
  construction happens *outside* the timed region (each timing run feeds a
  pre-built engine): the bar is the per-message processing cost, not
  ``__init__``.  Floors: stdlib (the extracted parity-reference kernels)
  ``>= 2x`` — the column-native acceptance bar, unchanged by the kernel
  refactor — and numpy ``>= 5x``, the vectorised-kernel acceptance bar.
  Identical ``InferenceResult`` sequences are asserted before timing.
* **SWIFTED replay end to end** — the same slice through
  :func:`~repro.experiments.month_replay.replay_stream` column-native
  versus ``column_native=False`` (runs materialised, ``receive_batch``),
  with byte-identical ``MonthReplayResult.signature()`` asserted and a
  construction probe proving the native path materialises **zero**
  ``BGPMessage`` objects.  The end-to-end ratio is smaller than the engine
  ratio because the speaker's RIB work is shared by both paths; both are
  recorded.

Results merge into ``BENCH_inference.json`` at the repository root with the
shared environment fields (``cpus``, ``kernel_backend``, ``numpy_version``
— see :func:`conftest.bench_env`), same pattern as ``BENCH_fleet.json``.
"""

import gc
import json
import os
import time
from contextlib import contextmanager
from dataclasses import replace

import pytest

from conftest import bench_env

from repro.core import kernels
from repro.core.burst_detection import BurstDetectorConfig
from repro.core.history import TriggeringSchedule
from repro.core.inference import InferenceConfig, InferenceEngine
from repro.core.swifted_router import SwiftConfig
from repro.experiments.month_replay import replay_stream
from repro.traces import columnar
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
    cached_columnar_stream,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_inference.json")

#: A month-long, burst-dominated session: withdrawals arrive in pure failure
#: bursts (the paper's Fig. 1 shape — ``withdrawal_fraction=1.0``) over low
#: background noise, which is exactly the traffic mix where the inference
#: engines dominate the replay cost.
_SLICE_CONFIG = SyntheticTraceConfig(
    peer_count=2,
    duration_days=30.0,
    min_table_size=8000,
    max_table_size=20000,
    burst_size_minimum=1000,
    noise_rate_per_second=0.002,
    withdrawal_fraction=1.0,
    seed=909,
)

#: Lowered detection/trigger thresholds (coldstart-bench style) so every
#: burst of the slice drives the burst machinery end to end.
_ENGINE_CONFIG = InferenceConfig(
    detector=BurstDetectorConfig(start_threshold=100, stop_threshold=1),
    schedule=TriggeringSchedule(steps=((1500, 100000),), unconditional_after=2000),
)

_SWIFT_CONFIG = SwiftConfig(inference=_ENGINE_CONFIG)


def _record(key, payload):
    """Merge one benchmark's results into BENCH_inference.json."""
    data = {}
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


@contextmanager
def _gc_paused():
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _best_seconds(fn, runs=5):
    best = float("inf")
    for _ in range(runs):
        with _gc_paused():
            begin = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - begin)
    return best


def _best_feed_seconds(setup, feed, runs=5):
    """Best-of-``runs`` wall time of ``feed(state)`` with ``setup()`` untimed.

    Engine construction (intern-table sizing, detector/fit-score init) is
    deliberately outside the timed region: the benchmark's bar is the
    per-message processing cost of the stack, which every replay pays per
    message, not the fixed per-session setup.
    """
    best = float("inf")
    for _ in range(runs):
        state = setup()
        with _gc_paused():
            begin = time.perf_counter()
            feed(state)
            best = min(best, time.perf_counter() - begin)
    return best


def _slice_inputs():
    generator_stream = SyntheticTraceGenerator(_SLICE_CONFIG).stream()
    peer_as = generator_stream.peers[0].peer_as
    stream = cached_columnar_stream(_SLICE_CONFIG, peer_as)
    rib = generator_stream.rib_of(peer_as)
    return stream, rib, peer_as


@contextmanager
def _construction_probe():
    """Count every message materialised off the columns while active."""
    calls = [0]
    original = columnar.ColumnarTrace.message_at

    def counting(self, index):
        calls[0] += 1
        return original(self, index)

    columnar.ColumnarTrace.message_at = counting
    try:
        yield calls
    finally:
        columnar.ColumnarTrace.message_at = original


#: Per-backend engine-stack floor over the object path.  stdlib carries the
#: original column-native acceptance bar (the kernel extraction must not
#: slow the reference loops down); numpy carries the vectorised-kernel bar.
_BACKEND_FLOORS = {"stdlib": 2.0, "numpy": 5.0}


@pytest.mark.slow
def test_bench_engine_stack_columnar_vs_materialised():
    """process_columnar_run (per kernel backend) vs the object path.

    Each timed run feeds a freshly built engine; construction is untimed
    (see :func:`_best_feed_seconds`).
    """
    stream, rib, _ = _slice_inputs()
    backends = kernels.available_backends()

    def engine_for(backend):
        config = replace(_ENGINE_CONFIG, kernel_backend=backend)
        return InferenceEngine(rib, config=config)

    def columnar_feed(engine):
        for run in stream.iter_batches():
            engine.process_columnar_run(run)

    def object_feed(engine):
        engine.process_batch(stream.iter_messages())

    # Parity before timing: every backend must produce the exact result
    # sequence and final RIB of the per-message object path.
    object_engine = engine_for(None)
    object_feed(object_engine)
    assert object_engine.results, "the slice must exercise the triggers"
    for backend in backends:
        engine = engine_for(backend)
        columnar_feed(engine)
        assert engine.results == object_engine.results, backend
        assert engine.current_rib() == object_engine.current_rib(), backend

    # Interleaved rounds: each round times the object path and every backend
    # back to back, and each path keeps its best round.  A transient CPU
    # slowdown then degrades one *round* rather than one path's entire
    # sample, which keeps the recorded ratios honest on noisy hosts.
    object_seconds = float("inf")
    columnar_seconds = {backend: float("inf") for backend in backends}
    for _ in range(5):
        object_seconds = min(
            object_seconds, _best_feed_seconds(lambda: engine_for(None), object_feed, runs=1)
        )
        for backend in backends:
            columnar_seconds[backend] = min(
                columnar_seconds[backend],
                _best_feed_seconds(lambda: engine_for(backend), columnar_feed, runs=1),
            )
    payload = {
        "messages": stream.message_count,
        "withdrawals": stream.withdrawal_total,
        "announcements": stream.announcement_total,
        "inference_results": len(object_engine.results),
        "object_seconds": round(object_seconds, 4),
        **bench_env(),
    }
    print(
        f"\nengine stack ({stream.message_count} msgs, "
        f"{stream.withdrawal_total} wd): object {object_seconds:.3f} s"
    )
    speedups = {}
    for backend in backends:
        seconds = columnar_seconds[backend]
        speedups[backend] = speedup = object_seconds / max(seconds, 1e-9)
        payload[f"columnar_seconds.{backend}"] = round(seconds, 4)
        payload[f"speedup.{backend}"] = round(speedup, 2)
        print(f"  {backend}: {seconds:.3f} s ({speedup:.2f}x)")
    _record("engine_stack.columnar_vs_object", payload)

    for backend in backends:
        assert speedups[backend] >= _BACKEND_FLOORS[backend], (
            backend,
            round(speedups[backend], 2),
        )


@pytest.mark.slow
def test_bench_swifted_replay_column_native_end_to_end():
    """Full SWIFTED replay of the slice, native vs materialising."""
    stream, rib, peer_as = _slice_inputs()

    def replay(native):
        return replay_stream(
            stream,
            rib,
            peer_as=peer_as,
            swifted=True,
            swift_config=_SWIFT_CONFIG,
            collect_events=True,
            column_native=native,
        )

    with _construction_probe() as calls:
        native = replay(True)
        assert calls[0] == 0, (
            f"column-native SWIFTED replay materialised {calls[0]} messages"
        )
    materialised = replay(False)
    assert native.signature() == materialised.signature(), "parity before timing"
    assert native.reroutes > 0, "expected SWIFT to fire on the slice"

    native_seconds = min(replay(True).wall_seconds for _ in range(3))
    materialised_seconds = min(replay(False).wall_seconds for _ in range(3))
    speedup = materialised_seconds / max(native_seconds, 1e-9)
    _record(
        "swifted_replay.column_native_vs_materialising",
        {
            "messages": native.message_count,
            "reroutes": native.reroutes,
            "losses": native.losses,
            **bench_env(),
            "materialising_seconds": round(materialised_seconds, 4),
            "column_native_seconds": round(native_seconds, 4),
            "speedup": round(speedup, 2),
            "messages_materialised_native": 0,
            "byte_identical": True,
        },
    )
    print(
        f"\nswifted replay end-to-end ({native.message_count} msgs, "
        f"{native.reroutes} reroutes): materialising "
        f"{materialised_seconds:.3f} s, column-native {native_seconds:.3f} s "
        f"({speedup:.2f}x, zero messages materialised)"
    )
    # The end-to-end ratio includes the speaker's (shared) RIB work; the
    # engine-stack bench above carries the >= 2x acceptance floor.
    assert speedup >= 1.2
