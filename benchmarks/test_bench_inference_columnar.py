"""Column-native inference benchmarks, recorded in ``BENCH_inference.json``.

Two costs of an engine-dominated SWIFTED month-slice replay are measured
(marked ``slow``: the slice is month-scale, see ``pytest.ini``):

* **engine stack** — the inference stack (burst detector, fit-score
  calculator, engine) consuming the slice through
  :meth:`~repro.core.inference.InferenceEngine.process_columnar_run` versus
  the per-message object path over the materialised stream.  The slice is
  burst-dominated and the detection threshold lowered (as in the coldstart
  and fleet benches) so the engines — not quiet churn — do the work; the
  ``>= 2x`` floor is the acceptance bar of the column-native refactor.
  Identical ``InferenceResult`` sequences are asserted before timing.
* **SWIFTED replay end to end** — the same slice through
  :func:`~repro.experiments.month_replay.replay_stream` column-native
  versus ``column_native=False`` (runs materialised, ``receive_batch``),
  with byte-identical ``MonthReplayResult.signature()`` asserted and a
  construction probe proving the native path materialises **zero**
  ``BGPMessage`` objects.  The end-to-end ratio is smaller than the engine
  ratio because the speaker's RIB work is shared by both paths; both are
  recorded.

Results merge into ``BENCH_inference.json`` at the repository root with a
``cpus`` field, same pattern as ``BENCH_fleet.json``.
"""

import gc
import json
import os
import time
from contextlib import contextmanager

import pytest

from repro.core.burst_detection import BurstDetectorConfig
from repro.core.history import TriggeringSchedule
from repro.core.inference import InferenceConfig, InferenceEngine
from repro.core.swifted_router import SwiftConfig
from repro.experiments.month_replay import replay_stream
from repro.traces import columnar
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
    cached_columnar_stream,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_inference.json")

#: A month-long, burst-dominated session: withdrawals arrive in pure failure
#: bursts (the paper's Fig. 1 shape — ``withdrawal_fraction=1.0``) over low
#: background noise, which is exactly the traffic mix where the inference
#: engines dominate the replay cost.
_SLICE_CONFIG = SyntheticTraceConfig(
    peer_count=2,
    duration_days=30.0,
    min_table_size=8000,
    max_table_size=20000,
    burst_size_minimum=1000,
    noise_rate_per_second=0.002,
    withdrawal_fraction=1.0,
    seed=909,
)

#: Lowered detection/trigger thresholds (coldstart-bench style) so every
#: burst of the slice drives the burst machinery end to end.
_ENGINE_CONFIG = InferenceConfig(
    detector=BurstDetectorConfig(start_threshold=100, stop_threshold=1),
    schedule=TriggeringSchedule(steps=((1500, 100000),), unconditional_after=2000),
)

_SWIFT_CONFIG = SwiftConfig(inference=_ENGINE_CONFIG)


def _record(key, payload):
    """Merge one benchmark's results into BENCH_inference.json."""
    data = {}
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


@contextmanager
def _gc_paused():
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _best_seconds(fn, runs=5):
    best = float("inf")
    for _ in range(runs):
        with _gc_paused():
            begin = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - begin)
    return best


def _available_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _slice_inputs():
    generator_stream = SyntheticTraceGenerator(_SLICE_CONFIG).stream()
    peer_as = generator_stream.peers[0].peer_as
    stream = cached_columnar_stream(_SLICE_CONFIG, peer_as)
    rib = generator_stream.rib_of(peer_as)
    return stream, rib, peer_as


@contextmanager
def _construction_probe():
    """Count every message materialised off the columns while active."""
    calls = [0]
    original = columnar.ColumnarTrace.message_at

    def counting(self, index):
        calls[0] += 1
        return original(self, index)

    columnar.ColumnarTrace.message_at = counting
    try:
        yield calls
    finally:
        columnar.ColumnarTrace.message_at = original


@pytest.mark.slow
def test_bench_engine_stack_columnar_vs_materialised():
    """process_columnar_run vs process_batch over the materialised slice."""
    stream, rib, _ = _slice_inputs()

    def columnar_pass():
        engine = InferenceEngine(rib, config=_ENGINE_CONFIG)
        for run in stream.iter_batches():
            engine.process_columnar_run(run)
        return engine

    def object_pass():
        engine = InferenceEngine(rib, config=_ENGINE_CONFIG)
        engine.process_batch(stream.iter_messages())
        return engine

    columnar_engine = columnar_pass()
    object_engine = object_pass()
    assert columnar_engine.results == object_engine.results, "parity before timing"
    assert columnar_engine.results, "the slice must exercise the triggers"
    assert columnar_engine.current_rib() == object_engine.current_rib()

    columnar_seconds = _best_seconds(columnar_pass)
    object_seconds = _best_seconds(object_pass)
    speedup = object_seconds / max(columnar_seconds, 1e-9)
    cpus = _available_cpus()
    _record(
        "engine_stack.columnar_vs_object",
        {
            "messages": stream.message_count,
            "withdrawals": stream.withdrawal_total,
            "announcements": stream.announcement_total,
            "inference_results": len(columnar_engine.results),
            "cpus": cpus,
            "object_seconds": round(object_seconds, 4),
            "columnar_seconds": round(columnar_seconds, 4),
            "speedup": round(speedup, 2),
        },
    )
    print(
        f"\nengine stack ({stream.message_count} msgs, "
        f"{stream.withdrawal_total} wd): object {object_seconds:.3f} s, "
        f"columnar {columnar_seconds:.3f} s ({speedup:.2f}x)"
    )
    assert speedup >= 2.0


@pytest.mark.slow
def test_bench_swifted_replay_column_native_end_to_end():
    """Full SWIFTED replay of the slice, native vs materialising."""
    stream, rib, peer_as = _slice_inputs()

    def replay(native):
        return replay_stream(
            stream,
            rib,
            peer_as=peer_as,
            swifted=True,
            swift_config=_SWIFT_CONFIG,
            collect_events=True,
            column_native=native,
        )

    with _construction_probe() as calls:
        native = replay(True)
        assert calls[0] == 0, (
            f"column-native SWIFTED replay materialised {calls[0]} messages"
        )
    materialised = replay(False)
    assert native.signature() == materialised.signature(), "parity before timing"
    assert native.reroutes > 0, "expected SWIFT to fire on the slice"

    native_seconds = min(replay(True).wall_seconds for _ in range(3))
    materialised_seconds = min(replay(False).wall_seconds for _ in range(3))
    speedup = materialised_seconds / max(native_seconds, 1e-9)
    cpus = _available_cpus()
    _record(
        "swifted_replay.column_native_vs_materialising",
        {
            "messages": native.message_count,
            "reroutes": native.reroutes,
            "losses": native.losses,
            "cpus": cpus,
            "materialising_seconds": round(materialised_seconds, 4),
            "column_native_seconds": round(native_seconds, 4),
            "speedup": round(speedup, 2),
            "messages_materialised_native": 0,
            "byte_identical": True,
        },
    )
    print(
        f"\nswifted replay end-to-end ({native.message_count} msgs, "
        f"{native.reroutes} reroutes): materialising "
        f"{materialised_seconds:.3f} s, column-native {native_seconds:.3f} s "
        f"({speedup:.2f}x, zero messages materialised)"
    )
    # The end-to-end ratio includes the speaker's (shared) RIB work; the
    # engine-stack bench above carries the >= 2x acceptance floor.
    assert speedup >= 1.2
