"""Benchmarks regenerating Fig. 6 (localisation) and Table 2 (prediction)."""

import pytest

from repro.experiments import fig6, table2
from repro.metrics.quadrants import Quadrant


@pytest.mark.slow
def test_bench_fig6_localisation_quadrants(benchmark, corpus):
    result = benchmark.pedantic(fig6.run, args=(corpus,), rounds=1, iterations=1)
    print()
    print(fig6.format_result(result))
    # Key qualitative claims of the paper: the top-left quadrant dominates and
    # the bottom-right quadrant is empty, with and without history.
    assert result.bad_inference_share() == 0.0
    if result.points_with_history:
        assert result.with_history[Quadrant.TOP_LEFT] >= 0.5
    if result.points_without_history:
        assert result.without_history[Quadrant.TOP_LEFT] >= 0.4


def test_bench_table2_prediction_accuracy(benchmark, corpus):
    result = benchmark.pedantic(table2.run, args=(corpus,), rounds=1, iterations=1)
    print()
    print(table2.format_result(result))
    assert result.small_count + result.large_count > 0
    # SWIFT correctly predicts the majority of the future withdrawals at the
    # median (paper: 89.5% small bursts / 93% large bursts).
    if result.small_count:
        assert result.median_cpr(large=False) >= 0.6
    if result.large_count:
        assert result.median_cpr(large=True) >= 0.6
