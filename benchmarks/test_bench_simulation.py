"""Benchmark regenerating the §6.2.2 / §6.3.2 simulation validation."""

import pytest

from repro.experiments import simulation_validation


@pytest.mark.slow
def test_bench_simulation_validation(benchmark):
    result = benchmark.pedantic(
        simulation_validation.run,
        kwargs={
            "as_count": 250,
            "prefixes_per_as": 20,
            "failures": 20,
            "min_burst": 50,
            "seed": 5,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(simulation_validation.format_result(result))
    assert result.bursts > 0
    # End-of-burst inferences localise the failure (exact/superset/adjacent);
    # outright wrong inferences are rare (paper: 3 out of 2,183 with noise).
    assert result.end_wrong <= max(1, int(0.2 * result.bursts))


def test_bench_simulation_validation_with_noise(benchmark):
    result = benchmark.pedantic(
        simulation_validation.run,
        kwargs={
            "as_count": 200,
            "prefixes_per_as": 15,
            "failures": 12,
            "min_burst": 40,
            "noise_withdrawals": 100,
            "seed": 9,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(simulation_validation.format_result(result))
    # Robustness to unrelated withdrawals: the conclusions stay the same.
    if result.bursts:
        assert result.end_wrong <= max(1, int(0.3 * result.bursts))
