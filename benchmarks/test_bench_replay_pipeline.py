"""Replay-pipeline benchmarks: the batch-first speaker, incremental
provisioning and trace memoisation wins, with machine-readable results.

Three claims are measured (and guarded with conservative regression floors;
the actual measured ratios land well above them on an idle machine):

* ``BGPSpeaker.receive_batch`` versus per-message ``receive`` on burst-sized
  batches — a path-exploration storm (every prefix re-announced over a few
  alternates before the final withdrawal, as real BGP path hunting does)
  and a pure withdrawal burst;
* a warm (incremental) ``SwiftedRouter.provision()`` versus a from-scratch
  rebuild after the same small churn;
* reloading the benchmark corpus from the on-disk trace cache versus
  generating it.

Every test merges its numbers into ``BENCH_replay.json`` at the repository
root, so the perf trajectory of the replay pipeline is recorded run over
run.
"""

import gc
import json
import os
import time
from contextlib import contextmanager

import pytest

from conftest import bench_env

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import Update
from repro.bgp.prefix import prefix_block
from repro.bgp.speaker import BGPSpeaker
from repro.core import SwiftedRouter
from repro.experiments.common import burst_corpus
from repro.traces.trace_cache import cache_path_for

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_replay.json")


def _record(key, payload):
    """Merge one benchmark's results into BENCH_replay.json."""
    data = {}
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


@contextmanager
def _gc_paused():
    """Suspend the cyclic GC during a timed section (collect right before).

    Benchmarks run after other tests in the same process; without this the
    collector's pauses land arbitrarily inside whichever variant happens to
    allocate when a threshold trips, skewing the ratios.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _best_of(runs, build, replay):
    """Best wall time of ``replay`` over freshly built state, in seconds."""
    best = float("inf")
    for _ in range(runs):
        state = build()
        with _gc_paused():
            begin = time.perf_counter()
            replay(state)
            best = min(best, time.perf_counter() - begin)
    return best


# -- batched speaker -----------------------------------------------------------

PEERS = list(range(2, 18))  # a collector-grade router: 16 peering sessions
TABLE = 20000


def _speaker():
    speaker = BGPSpeaker(1)
    prefixes = prefix_block("60.0.0.0/24", TABLE)
    for peer in PEERS:
        speaker.add_peer(peer)
    for peer in PEERS:
        # One shared attribute object per peer, as update packing produces.
        attributes = PathAttributes(
            as_path=ASPath([peer, 5, 6]), next_hop=peer, local_pref=100 + peer
        )
        speaker.receive_batch(
            Update.announce(0.0, peer, prefix, attributes) for prefix in prefixes
        )
    # A realistic replay consumer: track loss-of-reachability events.
    speaker.losses = []
    speaker.add_best_route_listener(
        lambda changes: speaker.losses.extend(
            change.prefix for change in changes if change.is_loss_of_reachability
        )
    )
    return speaker


def _exploration_burst(affected=4000, alternates=10):
    """Path-exploration storm on the preferred session: every affected
    prefix walks through ``alternates`` alternate paths before the final
    withdrawal (classic BGP path hunting ahead of a loss of reachability)."""
    preferred = PEERS[-1]
    prefixes = prefix_block("60.0.0.0/24", TABLE)[:affected]
    alternate_attrs = [
        PathAttributes(
            as_path=ASPath([preferred, 30 + k, 5, 6]),
            next_hop=preferred,
            local_pref=100 + preferred,
        )
        for k in range(alternates)
    ]
    messages = []
    clock = 10.0
    for prefix in prefixes:
        for attrs in alternate_attrs:
            messages.append(Update.announce(clock, preferred, prefix, attrs))
            clock += 1e-4
        messages.append(Update.withdraw(clock, preferred, prefix))
        clock += 1e-4
    return messages


def _withdrawal_burst(size=8000):
    preferred = PEERS[-1]
    prefixes = prefix_block("60.0.0.0/24", TABLE)[:size]
    return [
        Update.withdraw(10.0 + index * 1e-4, preferred, prefix)
        for index, prefix in enumerate(prefixes)
    ]


def _speaker_speedup(messages, runs=3):
    def per_message(speaker):
        receive = speaker.receive
        for message in messages:
            receive(message)

    per_message_seconds = _best_of(runs, _speaker, per_message)
    batched_seconds = _best_of(
        runs, _speaker, lambda speaker: speaker.receive_batch(messages)
    )
    return per_message_seconds, batched_seconds


@pytest.mark.slow
def test_bench_batched_speaker_exploration_burst():
    messages = _exploration_burst()
    per_message_seconds, batched_seconds = _speaker_speedup(messages)
    speedup = per_message_seconds / batched_seconds
    _record(
        "batched_speaker.exploration_burst",
        {
            "messages": len(messages),
            "peers": len(PEERS),
            **bench_env(),
            "per_message_seconds": round(per_message_seconds, 4),
            "batched_seconds": round(batched_seconds, 4),
            "speedup": round(speedup, 2),
        },
    )
    print(
        f"\nexploration burst ({len(messages)} msgs): per-message "
        f"{per_message_seconds * 1e3:.0f} ms, batched {batched_seconds * 1e3:.0f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 3.0  # measured ~5x; floor guards regressions under CI noise


@pytest.mark.slow
def test_bench_batched_speaker_withdrawal_burst():
    messages = _withdrawal_burst()
    per_message_seconds, batched_seconds = _speaker_speedup(messages)
    speedup = per_message_seconds / batched_seconds
    _record(
        "batched_speaker.withdrawal_burst",
        {
            "messages": len(messages),
            "peers": len(PEERS),
            **bench_env(),
            "per_message_seconds": round(per_message_seconds, 4),
            "batched_seconds": round(batched_seconds, 4),
            "speedup": round(speedup, 2),
        },
    )
    print(
        f"\nwithdrawal burst ({len(messages)} msgs): per-message "
        f"{per_message_seconds * 1e3:.0f} ms, batched {batched_seconds * 1e3:.0f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 1.2


# -- incremental provisioning ---------------------------------------------------


def _loaded_router(prefix_count=30000):
    s6 = prefix_block("60.0.0.0/24", prefix_count)
    router = SwiftedRouter(1)
    for peer in (2, 3, 4):
        router.add_peer(peer)
    router.load_initial_routes(2, {p: ASPath([2, 5, 6]) for p in s6}, local_pref=200)
    router.load_initial_routes(3, {p: ASPath([3, 6]) for p in s6}, local_pref=100)
    router.load_initial_routes(4, {p: ASPath([4, 5, 6]) for p in s6}, local_pref=150)
    return router, s6


def _churn(router, s6, moved=200):
    """Small quiet-time churn: a couple hundred prefixes move on AS 4."""
    attributes = PathAttributes(as_path=ASPath([4, 8, 6]), next_hop=4, local_pref=150)
    router.receive_batch(
        [
            Update.announce(100.0 + index * 30.0, 4, prefix, attributes)
            for index, prefix in enumerate(s6[:moved])
        ]
    )


def test_bench_warm_vs_cold_provision():
    router, s6 = _loaded_router()
    with _gc_paused():
        begin = time.perf_counter()
        router.provision()
        cold_initial = time.perf_counter() - begin

    _churn(router, s6)
    with _gc_paused():
        begin = time.perf_counter()
        router.provision()
        warm_delta = time.perf_counter() - begin
    assert router.last_provision_stats["mode"] == 1

    with _gc_paused():
        begin = time.perf_counter()
        router.provision()
        warm_clean = time.perf_counter() - begin

    _churn(router, s6)
    with _gc_paused():
        begin = time.perf_counter()
        router.provision(full_rebuild=True)
        cold_rebuild = time.perf_counter() - begin

    delta_speedup = cold_rebuild / warm_delta
    clean_speedup = cold_rebuild / warm_clean
    _record(
        "incremental_provision",
        {
            "prefixes": len(s6),
            "sessions": 3,
            "churned_prefixes": 200,
            **bench_env(),
            "cold_initial_seconds": round(cold_initial, 3),
            "cold_rebuild_seconds": round(cold_rebuild, 3),
            "warm_delta_seconds": round(warm_delta, 4),
            "warm_clean_seconds": round(warm_clean, 5),
            "warm_delta_speedup": round(delta_speedup, 1),
            "warm_clean_speedup": round(clean_speedup, 1),
        },
    )
    print(
        f"\nprovision over {len(s6)} prefixes: cold {cold_rebuild:.2f} s, "
        f"warm after 200-prefix churn {warm_delta * 1e3:.1f} ms "
        f"({delta_speedup:.0f}x), warm clean {warm_clean * 1e3:.1f} ms "
        f"({clean_speedup:.0f}x)"
    )
    assert delta_speedup >= 10.0
    assert clean_speedup >= 10.0


# -- trace memoisation ----------------------------------------------------------


def test_bench_trace_memoisation():
    """Corpus generation vs a cache reload, through the shipped cache path.

    Exercises :func:`repro.experiments.common.cached_corpus` itself (the
    columnar encode/decode pair and fingerprint keys), so the recorded
    trajectory measures what the benchmark fixtures actually pay.  Uses a
    dedicated seed so the shared ``corpus`` fixture cache is left alone,
    and clears its own entry first so the first build is a true miss.
    """
    import inspect

    from repro.experiments.common import cached_corpus
    from repro.traces.columnar import COLUMNAR_FORMAT_VERSION
    from repro.traces.trace_cache import fingerprint

    kwargs = dict(
        peer_count=10,
        duration_days=20,
        min_table_size=4000,
        max_table_size=30000,
        seed=777,
    )
    bound = inspect.signature(burst_corpus).bind(**kwargs)
    bound.apply_defaults()
    path = cache_path_for(
        "corpus",
        fingerprint(dict(bound.arguments)),
        format_version=COLUMNAR_FORMAT_VERSION,
    )
    if path and os.path.exists(path):
        os.unlink(path)

    with _gc_paused():
        begin = time.perf_counter()
        generated = cached_corpus(**kwargs)
        generate_seconds = time.perf_counter() - begin

    with _gc_paused():
        begin = time.perf_counter()
        reloaded = cached_corpus(**kwargs)
        reload_seconds = time.perf_counter() - begin

    assert len(reloaded) == len(generated)
    assert [burst.peer_as for burst in reloaded] == [
        burst.peer_as for burst in generated
    ]
    speedup = generate_seconds / reload_seconds
    _record(
        "trace_memoisation.corpus",
        {
            "bursts": len(generated),
            **bench_env(),
            "generate_seconds": round(generate_seconds, 2),
            "reload_seconds": round(reload_seconds, 2),
            "speedup": round(speedup, 1),
        },
    )
    print(
        f"\ncorpus memoisation: generate {generate_seconds:.1f} s, reload "
        f"{reload_seconds:.2f} s ({speedup:.1f}x)"
    )
    assert speedup >= 3.0  # measured ~6x; floor guards regressions under CI noise
