"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures (scaled down so
the whole suite completes in minutes) and prints the reproduced rows next to
the paper's numbers.  The burst corpus and the synthetic trace are built once
per session, shared, and memoised on disk (``.trace_cache/``, see
:mod:`repro.traces.trace_cache`): the first session pays the full generation,
later sessions reload in seconds.  Set ``REPRO_TRACE_CACHE=off`` to force
regeneration.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments import cached_corpus  # noqa: E402
from repro.traces.synthetic import SyntheticTraceConfig, cached_trace  # noqa: E402


@pytest.fixture(scope="session")
def corpus():
    """Burst corpus standing in for the paper's 1,802 real-trace bursts."""
    return cached_corpus(
        peer_count=10,
        duration_days=20,
        min_table_size=4000,
        max_table_size=30000,
        seed=7,
    )


@pytest.fixture(scope="session")
def month_trace():
    """A month-long multi-session trace for the Fig. 2 statistics."""
    config = SyntheticTraceConfig(
        peer_count=30,
        duration_days=30.0,
        min_table_size=4000,
        max_table_size=60000,
        noise_rate_per_second=0.0,
        seed=13,
    )
    return cached_trace(config)
