"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures (scaled down so
the whole suite completes in minutes) and prints the reproduced rows next to
the paper's numbers.  The burst corpus and the synthetic trace are built once
per session, shared, and memoised on disk (``.trace_cache/``, see
:mod:`repro.traces.trace_cache`): the first session pays the full generation,
later sessions reload in seconds.  Set ``REPRO_TRACE_CACHE=off`` to force
regeneration.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core import kernels  # noqa: E402
from repro.experiments import cached_corpus  # noqa: E402
from repro.traces.synthetic import SyntheticTraceConfig, cached_trace  # noqa: E402


def available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware).

    ``os.cpu_count()`` reports the machine, not the cgroup/affinity mask a
    CI job or container actually granted; benchmark payloads must record the
    latter or the recorded ``cpus`` field overstates the run environment.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0)) or 1
    return os.cpu_count() or 1


def bench_env(kernel_backend=None):
    """Environment fields merged into every ``BENCH_*.json`` payload.

    Records the affinity-aware CPU count, the kernel backend the run
    resolved to (the default-selection result when ``kernel_backend`` is
    None — exactly what the benchmarked code picked), and the numpy
    version (``"absent"`` when not importable), so recorded numbers can
    be compared across environments.
    """
    return {
        "cpus": available_cpus(),
        "kernel_backend": kernels.get_backend(kernel_backend).NAME,
        "numpy_version": kernels.numpy_version(),
    }


@pytest.fixture(scope="session")
def corpus():
    """Burst corpus standing in for the paper's 1,802 real-trace bursts."""
    return cached_corpus(
        peer_count=10,
        duration_days=20,
        min_table_size=4000,
        max_table_size=30000,
        seed=7,
    )


@pytest.fixture(scope="session")
def month_trace():
    """A month-long multi-session trace for the Fig. 2 statistics."""
    config = SyntheticTraceConfig(
        peer_count=30,
        duration_days=30.0,
        min_table_size=4000,
        max_table_size=60000,
        noise_rate_per_second=0.0,
        seed=13,
    )
    return cached_trace(config)
