"""Benchmarks regenerating Fig. 2(a) and Fig. 2(b) (burst statistics)."""

import pytest

from repro.experiments import fig2


@pytest.mark.slow
def test_bench_fig2a_burst_frequency(benchmark, month_trace):
    result = benchmark.pedantic(
        fig2.run,
        kwargs={
            "trace": month_trace,
            "session_counts": (1, 5, 15, 30),
            "min_sizes": (5000, 10000, 25000),
            "samples": 30,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(fig2.format_result(result))
    # More sessions see more bursts; larger thresholds see fewer.
    assert result.median_bursts(30, 5000) >= result.median_bursts(5, 5000)
    assert result.median_bursts(30, 25000) <= result.median_bursts(30, 5000)
    # Even a single session sees bursts over a month (paper: 86% of sessions).
    assert result.median_bursts(1, 5000) >= 0.0


@pytest.mark.slow
def test_bench_fig2b_burst_durations(benchmark, month_trace):
    result = benchmark.pedantic(
        fig2.run,
        kwargs={"trace": month_trace, "session_counts": (1,), "min_sizes": (5000,), "samples": 5},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig2.format_result(result))
    # A substantial fraction of bursts take more than 10 s to arrive, and
    # bursts above 30 s are rarer (paper: 37% and 9.7%).
    assert 0.10 <= result.duration_fraction_above_10s <= 0.65
    assert result.duration_fraction_above_30s < result.duration_fraction_above_10s
