"""Fleet-replay benchmarks: process-pool scaling and mmap reloads, with
machine-readable results in ``BENCH_fleet.json``.

Two costs are measured (marked ``slow``: the corpus is month-scale and the
pool spawns real worker processes, so the tier-1 run skips this file —
see ``pytest.ini``):

* **fleet scaling** — replaying every session of a 4-session corpus with 4
  worker processes versus the sequential in-process baseline.  §4.1's
  per-session independence makes the workload embarrassingly parallel;
  the benchmark asserts the ≥2x wall-clock speedup *and* that the
  aggregated results (per-session counters plus loss/recovery/reroute
  multisets) are byte-identical to sequential replay;
* **mmap reload** — restoring a cached month stream from the column-store
  layout (``mmap`` + per-column ``frombytes``) versus unpickling the
  equivalent columnar blob, plus a time-window load that must read less
  than the full file.

Results merge into ``BENCH_fleet.json`` at the repository root (same
pattern as ``BENCH_replay.json`` / ``BENCH_coldstart.json``).
"""

import gc
import json
import os
import pickle
import tempfile
import time
from contextlib import contextmanager

import pytest

from conftest import available_cpus, bench_env

from repro.core.history import TriggeringSchedule
from repro.core.inference import InferenceConfig
from repro.core.swifted_router import SwiftConfig
from repro.replay import build_session_jobs, replay_jobs
from repro.traces.columnar_store import ColumnarTraceFile, write_trace
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
    cached_columnar_stream,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_fleet.json")

#: The fleet workload: every session of a 4-peer corpus, two weeks each.
#: Tables are drawn from a narrow band so the per-session replay costs are
#: comparable and the 4-worker speedup is bounded by overhead, not skew.
_FLEET_CONFIG = SyntheticTraceConfig(
    peer_count=4,
    duration_days=15,
    min_table_size=8000,
    max_table_size=20000,
    noise_rate_per_second=0.02,
    seed=909,
)

#: Lowered trigger (as in the coldstart bench) so SWIFT fires on the corpus.
_FLEET_SWIFT_CONFIG = SwiftConfig(
    inference=InferenceConfig(
        schedule=TriggeringSchedule(steps=((1500, 100000),), unconditional_after=2000)
    )
)


def _record(key, payload):
    """Merge one benchmark's results into BENCH_fleet.json."""
    data = {}
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


@contextmanager
def _gc_paused():
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _best_seconds(fn, runs=3):
    best = float("inf")
    for _ in range(runs):
        with _gc_paused():
            begin = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - begin)
    return best


@pytest.mark.slow
def test_bench_fleet_vs_sequential_replay():
    """4 workers vs sequential over the 4-session corpus; parity asserted."""
    jobs = build_session_jobs(_FLEET_CONFIG)
    assert len(jobs) >= 4

    sequential = replay_jobs(jobs, workers=1, swift_config=_FLEET_SWIFT_CONFIG)
    fleet = replay_jobs(jobs, workers=4, swift_config=_FLEET_SWIFT_CONFIG)

    assert pickle.dumps(fleet.signature()) == pickle.dumps(sequential.signature()), (
        "fleet aggregation must be byte-identical to sequential replay"
    )
    cpus = available_cpus()
    speedup = sequential.wall_seconds / fleet.wall_seconds
    _record(
        "fleet.swifted_4_workers",
        {
            "sessions": fleet.session_count,
            "workers": fleet.workers,
            **bench_env(),
            "messages": fleet.message_count,
            "reroutes": fleet.reroutes,
            "losses": fleet.losses,
            "recoveries": fleet.recoveries,
            "sequential_seconds": round(sequential.wall_seconds, 2),
            "fleet_seconds": round(fleet.wall_seconds, 2),
            "speedup": round(speedup, 2),
            "byte_identical": True,
            "fleet_messages_per_second": int(fleet.messages_per_second),
        },
    )
    print(
        f"\nfleet replay ({fleet.session_count} sessions, "
        f"{fleet.message_count} msgs, {cpus} cpus): sequential "
        f"{sequential.wall_seconds:.1f} s, 4 workers {fleet.wall_seconds:.1f} s "
        f"({speedup:.2f}x), {fleet.reroutes} reroutes"
    )
    # The scaling claim needs real cores to scale onto: per-session
    # independence gives near-linear speedup on a multicore host, but a
    # single-CPU container can only time-share the four workers (the pool
    # overhead then makes the fleet *slower*).  Parity is asserted
    # unconditionally above; the wall-clock floor applies where the
    # hardware can express it.
    if cpus >= 4:
        assert speedup >= 2.0
    elif cpus >= 2:
        assert speedup >= 1.2


@pytest.mark.slow
def test_bench_mmap_reload_vs_pickle():
    """Column-store reload vs pickled columnar blob, plus a window load."""
    peer_as = SyntheticTraceGenerator(_FLEET_CONFIG).stream().peers[0].peer_as
    stream = cached_columnar_stream(_FLEET_CONFIG, peer_as)

    with tempfile.NamedTemporaryFile(delete=False, suffix=".pkl") as handle:
        pickle_path = handle.name
        pickle.dump(stream, handle, protocol=pickle.HIGHEST_PROTOCOL)
    cols_path = pickle_path[:-4] + ".cols"
    write_trace(cols_path, stream)

    first = stream.first_timestamp
    last = stream.last_timestamp
    day = 86400.0

    def pickle_reload():
        with open(pickle_path, "rb") as handle:
            pickle.load(handle)

    def mmap_reload():
        with ColumnarTraceFile(cols_path) as store:
            store.load()

    try:
        pickle_seconds = _best_seconds(pickle_reload)
        mmap_seconds = _best_seconds(mmap_reload)

        with ColumnarTraceFile(cols_path) as store:
            begin = time.perf_counter()
            window = store.window(first, first + day)
            window_seconds = time.perf_counter() - begin
            window_bytes = store.bytes_read
            file_size = store.file_size
            assert 0 < window_bytes < file_size
            expected = stream.window(first, first + day)
            assert window.to_messages() == expected.to_messages(), (
                "window load must round-trip identically"
            )
        pickle_bytes = os.path.getsize(pickle_path)
    finally:
        os.unlink(pickle_path)
        os.unlink(cols_path)

    speedup = pickle_seconds / mmap_seconds
    _record(
        "reload.mmap_vs_pickle",
        {
            "messages": stream.message_count,
            "trace_days": round((last - first) / day, 1),
            **bench_env(),
            "pickle_seconds": round(pickle_seconds, 4),
            "mmap_seconds": round(mmap_seconds, 4),
            "speedup": round(speedup, 2),
            "pickle_bytes": pickle_bytes,
            "cols_bytes": file_size,
            "window_seconds": round(window_seconds, 4),
            "window_bytes_read": window_bytes,
            "window_fraction_of_blob": round(window_bytes / file_size, 4),
        },
    )
    print(
        f"\nmmap reload ({stream.message_count} msgs): pickle "
        f"{pickle_seconds:.3f} s, mmap {mmap_seconds:.3f} s ({speedup:.2f}x); "
        f"1-day window read {window_bytes} of {file_size} bytes "
        f"({window_bytes / file_size:.1%}) in {window_seconds:.4f} s"
    )
    # The mmap path drops the pickle layer; parity (>=0.8x) is the guard,
    # the win is the partial window load asserted above.
    assert speedup >= 0.8
