"""Cold-start benchmarks: columnar trace reload, profile-grouped backup
computation and end-to-end month-replay slices, with machine-readable
results in ``BENCH_coldstart.json``.

Three cold-start costs are measured (with conservative regression floors;
measured ratios land well above them on an idle machine):

* **trace reload** — restoring a cached multi-session trace from the
  columnar payload (array restores + lazy decode) versus unpickling the
  equivalent object graph, the pre-columnar cache format.  The tier-1 run
  measures a medium slice; the ``slow``-marked variant measures the full
  30-peer month fixture and records the headline number;
* **cold provision** — ``BackupComputer.compute_table`` profile-grouped
  versus the ungrouped per-prefix reference, plus the full cold
  ``provision()`` it dominates;
* **month-replay slice** — replaying a session stream end-to-end from a
  cold cache: columnar load + ``receive_columnar`` versus object-pickle
  load + ``receive_batch``, and the SWIFTED-router throughput on the same
  stream.

Results merge into ``BENCH_coldstart.json`` at the repository root (same
pattern as ``BENCH_replay.json``).
"""

import gc
import json
import os
import pickle
import tempfile
import time
from contextlib import contextmanager

import pytest

from conftest import bench_env

from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import Update
from repro.bgp.prefix import prefix_block
from repro.bgp.speaker import BGPSpeaker
from repro.core import SwiftConfig, SwiftedRouter
from repro.core.history import TriggeringSchedule
from repro.core.inference import InferenceConfig
from repro.experiments.month_replay import replay_stream
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
    _decode_trace,
    _encode_trace,
    cached_columnar_stream,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_coldstart.json")


def _record(key, payload):
    """Merge one benchmark's results into BENCH_coldstart.json."""
    data = {}
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


@contextmanager
def _gc_paused():
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _best_seconds(fn, runs=3):
    best = float("inf")
    for _ in range(runs):
        with _gc_paused():
            begin = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - begin)
    return best


# -- trace reload: columnar payload vs pickled object graph ---------------------


def _object_graph_form(trace):
    """The pre-columnar cache shape: plain object lists/dicts per field."""
    return {
        "bursts": [
            (
                burst.peer,
                burst.start_time,
                burst.failed_link,
                list(burst.messages),
                burst.withdrawn_prefixes,
                burst.updated_prefixes,
                burst.noise_prefixes,
                burst.popular,
            )
            for burst in trace.bursts
        ],
        "ribs": {peer.peer_as: trace.rib_of(peer.peer_as) for peer in trace.peers},
        "background": {
            peer_as: list(messages) for peer_as, messages in trace.background.items()
        },
    }


def _reload_comparison(trace, runs=3):
    """Dump both cache forms to disk and time their cold loads."""
    object_form = _object_graph_form(trace)
    columnar_payload = _encode_trace(trace)

    with tempfile.NamedTemporaryFile(delete=False) as handle:
        object_path = handle.name
        pickle.dump(object_form, handle, protocol=pickle.HIGHEST_PROTOCOL)
    with tempfile.NamedTemporaryFile(delete=False) as handle:
        columnar_path = handle.name
        pickle.dump(columnar_payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        object_seconds = _best_seconds(
            lambda: pickle.load(open(object_path, "rb")), runs
        )
        columnar_seconds = _best_seconds(
            lambda: _decode_trace(pickle.load(open(columnar_path, "rb"))), runs
        )
        sizes = (os.path.getsize(object_path), os.path.getsize(columnar_path))
    finally:
        os.unlink(object_path)
        os.unlink(columnar_path)
    return object_seconds, columnar_seconds, sizes


def test_bench_trace_reload_columnar_vs_pickle():
    """Medium month slice, run on every tier-1 pass as the regression guard."""
    config = SyntheticTraceConfig(
        peer_count=4,
        duration_days=15,
        min_table_size=4000,
        max_table_size=30000,
        noise_rate_per_second=0.0,
        seed=909,
    )
    trace = SyntheticTraceGenerator(config).generate()
    message_count = sum(len(burst.messages) for burst in trace.bursts)
    object_seconds, columnar_seconds, (object_bytes, columnar_bytes) = (
        _reload_comparison(trace)
    )
    speedup = object_seconds / columnar_seconds
    _record(
        "trace_reload.medium_slice",
        {
            "peers": config.peer_count,
            "duration_days": config.duration_days,
            "burst_messages": message_count,
            **bench_env(),
            "object_pickle_seconds": round(object_seconds, 3),
            "columnar_seconds": round(columnar_seconds, 3),
            "object_bytes": object_bytes,
            "columnar_bytes": columnar_bytes,
            "speedup": round(speedup, 1),
        },
    )
    print(
        f"\ntrace reload ({message_count} burst msgs): object pickle "
        f"{object_seconds:.2f} s, columnar {columnar_seconds:.3f} s "
        f"({speedup:.1f}x)"
    )
    # Measured ~5-20x depending on page-cache state; the month-scale slow
    # benchmark asserts the headline >=5x, this guard stays CI-noise-proof.
    assert speedup >= 3.0


@pytest.mark.slow
def test_bench_month_trace_reload(month_trace):
    """Full 30-peer month trace: the headline reload number."""
    message_count = sum(len(burst.messages) for burst in month_trace.bursts)
    object_seconds, columnar_seconds, (object_bytes, columnar_bytes) = (
        _reload_comparison(month_trace, runs=2)
    )
    speedup = object_seconds / columnar_seconds
    _record(
        "trace_reload.month",
        {
            "peers": len(month_trace.peers),
            "burst_messages": message_count,
            **bench_env(),
            "object_pickle_seconds": round(object_seconds, 2),
            "columnar_seconds": round(columnar_seconds, 2),
            "object_bytes": object_bytes,
            "columnar_bytes": columnar_bytes,
            "speedup": round(speedup, 1),
        },
    )
    print(
        f"\nmonth trace reload ({message_count} burst msgs): object pickle "
        f"{object_seconds:.1f} s, columnar {columnar_seconds:.2f} s "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 5.0


# -- cold provision: profile-grouped backup computation -------------------------


def _loaded_router(prefix_count=30000):
    s6 = prefix_block("60.0.0.0/24", prefix_count)
    router = SwiftedRouter(1)
    for peer in (2, 3, 4):
        router.add_peer(peer)
    router.load_initial_routes(2, {p: ASPath([2, 5, 6]) for p in s6}, local_pref=200)
    router.load_initial_routes(3, {p: ASPath([3, 6]) for p in s6}, local_pref=100)
    router.load_initial_routes(4, {p: ASPath([4, 5, 6]) for p in s6}, local_pref=150)
    return router, s6


def test_bench_cold_provision_grouped_backups():
    router, s6 = _loaded_router()
    best_routes = {
        entry.prefix: entry for entry in router.speaker.loc_rib.best_entries()
    }
    computer = router.backup_computer
    speaker = router.speaker

    def grouped():
        speaker._ranked_cache.clear()
        computer.compute_table(
            1,
            best_routes,
            speaker.alternate_routes,
            candidates_of=speaker.loc_rib.candidate_map,
        )

    def reference():
        speaker._ranked_cache.clear()
        computer.compute_table_reference(1, best_routes, speaker.alternate_routes)

    grouped_seconds = _best_seconds(grouped)
    reference_seconds = _best_seconds(reference)

    with _gc_paused():
        begin = time.perf_counter()
        router.provision()
        provision_seconds = time.perf_counter() - begin

    speedup = reference_seconds / grouped_seconds
    _record(
        "cold_provision.grouped_backups",
        {
            "prefixes": len(s6),
            "sessions": 3,
            **bench_env(),
            "grouped_seconds": round(grouped_seconds, 3),
            "reference_seconds": round(reference_seconds, 3),
            "speedup": round(speedup, 1),
            "cold_provision_seconds": round(provision_seconds, 3),
        },
    )
    print(
        f"\ncompute_table over {len(s6)} prefixes: reference "
        f"{reference_seconds:.2f} s, grouped {grouped_seconds:.3f} s "
        f"({speedup:.1f}x); cold provision() {provision_seconds:.2f} s"
    )
    assert speedup >= 1.5


# -- end-to-end month-replay slice ----------------------------------------------

_REPLAY_CONFIG = SyntheticTraceConfig(
    peer_count=4,
    duration_days=15,
    min_table_size=4000,
    max_table_size=30000,
    noise_rate_per_second=0.02,
    seed=909,
)

#: The medium slice's bursts top out below the paper's default 2,500-withdrawal
#: trigger; lower it so the SWIFTED replay demonstrably fires.
_REPLAY_SWIFT_CONFIG = SwiftConfig(
    inference=InferenceConfig(
        schedule=TriggeringSchedule(
            steps=((1500, 100000),), unconditional_after=2000
        )
    )
)


def _replay_session():
    generator_stream = SyntheticTraceGenerator(_REPLAY_CONFIG).stream()
    peer_as = generator_stream.peers[0].peer_as
    stream = cached_columnar_stream(_REPLAY_CONFIG, peer_as)
    rib = generator_stream.rib_of(peer_as)
    return stream, rib, peer_as


def _fresh_speaker(peer_as, rib):
    speaker = BGPSpeaker(1)
    speaker.add_peer(peer_as)
    speaker.session(peer_as).record_stream = False
    interned = {}

    def attributes_for(path):
        attributes = interned.get(path.asns)
        if attributes is None:
            attributes = interned[path.asns] = PathAttributes(
                as_path=path, next_hop=peer_as
            )
        return attributes

    speaker.receive_batch(
        Update.announce(0.0, peer_as, prefix, attributes_for(path))
        for prefix, path in sorted(rib.items())
    )
    return speaker


def test_bench_month_replay_slice_cold_start():
    """Cold replay: load-from-cache + replay, columnar vs object pickle."""
    stream, rib, peer_as = _replay_session()

    # The two on-disk forms of the same stream.
    with tempfile.NamedTemporaryFile(delete=False) as handle:
        object_path = handle.name
        pickle.dump(
            stream.to_messages(), handle, protocol=pickle.HIGHEST_PROTOCOL
        )
    with tempfile.NamedTemporaryFile(delete=False) as handle:
        columnar_path = handle.name
        pickle.dump(stream, handle, protocol=pickle.HIGHEST_PROTOCOL)

    def cold_object_replay():
        messages = pickle.load(open(object_path, "rb"))
        _fresh_speaker(peer_as, rib).receive_batch(messages)

    def cold_columnar_replay():
        columns = pickle.load(open(columnar_path, "rb"))
        _fresh_speaker(peer_as, rib).receive_columnar(columns)

    try:
        object_seconds = _best_seconds(cold_object_replay)
        columnar_seconds = _best_seconds(cold_columnar_replay)
    finally:
        os.unlink(object_path)
        os.unlink(columnar_path)

    speedup = object_seconds / columnar_seconds
    _record(
        "month_replay.cold_speaker_slice",
        {
            "messages": stream.message_count,
            **bench_env(),
            "object_seconds": round(object_seconds, 3),
            "columnar_seconds": round(columnar_seconds, 3),
            "speedup": round(speedup, 2),
            "columnar_messages_per_second": int(
                stream.message_count / columnar_seconds
            ),
        },
    )
    print(
        f"\ncold speaker replay ({stream.message_count} msgs): object "
        f"{object_seconds:.2f} s, columnar {columnar_seconds:.2f} s "
        f"({speedup:.2f}x)"
    )
    assert speedup >= 1.05


def test_bench_month_replay_slice_swifted():
    """SWIFTED end-to-end slice: inference + reroutes on the columnar path."""
    stream, rib, peer_as = _replay_session()
    result = replay_stream(
        stream,
        rib,
        peer_as=peer_as,
        swift_config=_REPLAY_SWIFT_CONFIG,
        chunk_messages=50000,
    )
    _record(
        "month_replay.swifted_slice",
        {
            "messages": result.message_count,
            "withdrawals": result.withdrawal_count,
            "reroutes": result.reroutes,
            "losses": result.losses,
            "recoveries": result.recoveries,
            **bench_env(),
            "wall_seconds": round(result.wall_seconds, 2),
            "messages_per_second": int(result.messages_per_second),
        },
    )
    print(
        f"\nswifted month slice: {result.message_count} msgs in "
        f"{result.wall_seconds:.2f} s ({int(result.messages_per_second)} msg/s), "
        f"{result.reroutes} reroutes, {result.losses} losses"
    )
    assert result.reroutes > 0, "expected SWIFT to fire on the slice"
    assert result.message_count == stream.message_count
