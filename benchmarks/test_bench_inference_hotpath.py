"""Hot-path microbenchmarks: the link->prefix index vs the full-scan seed.

The SWIFT inference hot path has two former O(RIB) costs:

* seeding a fit-score calculator at every burst start (rescanning the whole
  Adj-RIB-In), and
* expanding the inferred links into their affected prefixes at every
  triggering threshold (scanning every prefix's links).

Both are now answered from the persistent
:class:`~repro.core.fit_score.LinkPrefixIndex` in time proportional to the
burst footprint.  These benchmarks measure the speedup against the retained
reference implementation and assert the >=3x bar on the per-trigger path —
in practice the ratios are orders of magnitude for RIBs of this size.
"""

import time

import pytest

from repro.bgp.attributes import ASPath
from repro.bgp.messages import Update
from repro.bgp.prefix import prefix_block
from repro.core.burst_detection import BurstDetectorConfig
from repro.core.fit_score import FitScoreCalculator, FitScoreConfig, LinkPrefixIndex
from repro.core.history import TriggeringSchedule
from repro.core.inference import InferenceConfig, InferenceEngine
from repro.core.reference import ReferenceFitScoreCalculator

PREFIXES_PER_ORIGIN = 150
ORIGINS = 200  # 30k prefixes over ~400 links


def _big_rib():
    """A 30k-prefix session RIB spread over ~200 origin ASes."""
    rib = {}
    for origin in range(ORIGINS):
        origin_as = 1000 + origin
        midway_as = 100 + origin % 50
        block = prefix_block(f"10.{origin % 200}.0.0/24", PREFIXES_PER_ORIGIN)
        path = ASPath([2, 5, midway_as, origin_as])
        for prefix in block:
            rib[prefix] = path
    return rib


def _burst_messages(rib, failed_as, start=100.0, rate=2000.0):
    """Withdraw every prefix whose path traverses ``failed_as``."""
    victims = [p for p, path in rib.items() if failed_as in path.asns]
    return [
        Update.withdraw(start + i / rate, 2, prefix)
        for i, prefix in enumerate(victims)
    ]


def _best(func, repeats=3):
    """Best-of-N wall time of ``func()`` (returns seconds)."""
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - begin)
    return best


def test_bench_burst_start_is_constant_time():
    """Seeding the calculator no longer scans the RIB at burst start."""
    rib = _big_rib()
    index = LinkPrefixIndex(rib)

    reference_seconds = _best(lambda: ReferenceFitScoreCalculator(rib))
    incremental_seconds = _best(
        lambda: FitScoreCalculator.from_index(index, config=FitScoreConfig())
    )
    speedup = reference_seconds / max(incremental_seconds, 1e-9)
    print(f"\nburst start: reference {reference_seconds * 1e3:.2f} ms, "
          f"index overlay {incremental_seconds * 1e6:.1f} us ({speedup:.0f}x)")
    assert speedup >= 3.0


def test_bench_prefix_expansion_uses_reverse_index():
    """prefixes_via_links is a set union, not a full RIB scan."""
    rib = _big_rib()
    index = LinkPrefixIndex(rib)
    incremental = FitScoreCalculator.from_index(index, config=FitScoreConfig())
    reference = ReferenceFitScoreCalculator(rib)
    links = [(100, 5), (1000, 100)]
    assert incremental.prefixes_via_links(links) == reference.prefixes_via_links(links)

    reference_seconds = _best(lambda: reference.prefixes_via_links(links))
    incremental_seconds = _best(lambda: incremental.prefixes_via_links(links))
    speedup = reference_seconds / max(incremental_seconds, 1e-9)
    print(f"\nprefix expansion: reference {reference_seconds * 1e3:.3f} ms, "
          f"reverse index {incremental_seconds * 1e6:.1f} us ({speedup:.0f}x)")
    assert speedup >= 3.0


def test_bench_per_trigger_inference_path():
    """End to end: an engine re-scoring at many triggering thresholds.

    A midway AS fails (600 withdrawn prefixes) and the schedule runs an
    inference every 50 withdrawals with a prediction limit of 1 so nothing
    is accepted — forcing the engine through the per-trigger path
    (all_scores + aggregation + prefix expansion) again and again, exactly
    where the O(RIB) costs used to sit.  Only the streaming phase is timed:
    engine construction (the one-time index build) is session setup, paid at
    provision time, not on the burst hot path.
    """
    rib = _big_rib()
    messages = _burst_messages(rib, failed_as=107)
    assert len(messages) >= 500
    config = InferenceConfig(
        detector=BurstDetectorConfig(start_threshold=100, stop_threshold=1),
        schedule=TriggeringSchedule(
            steps=tuple((50 * i, 1) for i in range(1, 11)),
            unconditional_after=10 ** 6,
        ),
    )

    def run_incremental():
        engine = InferenceEngine(rib, config=config)
        begin = time.perf_counter()
        engine.process_batch(messages)
        return time.perf_counter() - begin, engine.results

    def run_reference():
        engine = InferenceEngine(
            rib,
            config=config,
            calculator_factory=lambda current: ReferenceFitScoreCalculator(
                current, config=config.fit_score
            ),
        )
        begin = time.perf_counter()
        engine.process_batch(messages)
        return time.perf_counter() - begin, engine.results

    assert run_incremental()[1] == run_reference()[1], "parity before timing"
    incremental_seconds = min(run_incremental()[0] for _ in range(3))
    reference_seconds = min(run_reference()[0] for _ in range(3))
    speedup = reference_seconds / max(incremental_seconds, 1e-9)
    print(f"\nper-trigger path: reference {reference_seconds * 1e3:.1f} ms, "
          f"incremental {incremental_seconds * 1e3:.1f} ms ({speedup:.1f}x)")
    assert speedup >= 3.0
