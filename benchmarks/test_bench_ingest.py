"""Streaming ingestion benchmarks, recorded in ``BENCH_ingest.json``.

Three numbers characterise the always-on ingest path
(``src/repro/ingest/``):

* **Sustained throughput** — rows/s through the full reader → bounded
  queue → parse → fsync'd append log pipeline, for a multi-feed daemon
  run over a noisy multi-day corpus, plus the queue high-water marks the
  backpressure budget actually reached.
* **Recovery latency** — wall time for :func:`repro.ingest.recover_feed`
  to repair every feed directory and rebuild the open segments after the
  daemon subprocess is killed hard mid-ingest (the ``kill -9`` path the
  recovery tests prove correct; here we time it).
* **Segment roll cost** — amortised cost of sealing ``.cols`` segments,
  read off the throughput run's manifest.

Results merge into ``BENCH_ingest.json`` at the repository root with the
environment fields every ``BENCH_*.json`` carries (see
:func:`conftest.bench_env`), same pattern as ``BENCH_fleet.json``.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from conftest import bench_env

from repro.ingest import IngestConfig, IngestDaemon, Manifest, SyntheticFeed, recover_feed
from repro.traces.synthetic import SyntheticTraceConfig, SyntheticTraceGenerator

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_ingest.json")
_RUNNER = os.path.join(_REPO_ROOT, "tests", "_ingest_runner.py")

#: The throughput workload: two noisy sessions, a few days each — enough
#: rows (~30k) that per-row pipeline cost dominates setup.
_THROUGHPUT_CONFIG = SyntheticTraceConfig(
    peer_count=2,
    duration_days=3.0,
    min_table_size=4000,
    max_table_size=8000,
    burst_size_minimum=800,
    noise_rate_per_second=0.05,
    seed=23,
)


def _record(key, payload):
    """Merge one benchmark's results into BENCH_ingest.json."""
    data = {}
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.mark.slow
def test_bench_ingest_throughput(tmp_path):
    """Sustained rows/s through the full daemon pipeline, multi-feed."""
    root = str(tmp_path)
    peers = [
        peer.peer_as
        for peer in SyntheticTraceGenerator(_THROUGHPUT_CONFIG).stream().peers
    ]
    feeds = [SyntheticFeed(_THROUGHPUT_CONFIG, peer_as) for peer_as in peers]
    config = IngestConfig(flush_rows=512, segment_rows=8192, queue_size=1024)

    begin = time.perf_counter()
    result = IngestDaemon(root, feeds, config).run()
    elapsed = time.perf_counter() - begin

    assert result.failed_feeds == []
    rows = result.total_rows
    manifest = Manifest.load(root)
    segments = sum(status.segments_sealed for status in result.feeds.values())
    assert manifest.verify() == segments
    high_water = {
        name: status.queue_high_water for name, status in result.feeds.items()
    }
    payload = {
        "feeds": len(feeds),
        "rows": rows,
        "segments_sealed": segments,
        "flush_rows": config.flush_rows,
        "segment_rows": config.segment_rows,
        "queue_size": config.queue_size,
        "queue_high_water_max": max(high_water.values()),
        "wall_seconds": round(elapsed, 3),
        "rows_per_second": round(rows / elapsed, 1),
        **bench_env(),
    }
    _record("ingest.throughput", payload)
    print()
    print(
        f"  ingest: {rows} rows / {len(feeds)} feeds in {elapsed:.2f}s "
        f"-> {payload['rows_per_second']} rows/s, "
        f"{segments} segments, queue high-water {payload['queue_high_water_max']}"
    )
    assert rows > 10000


@pytest.mark.slow
def test_bench_ingest_recovery_after_kill(tmp_path):
    """Wall time to recover every feed after a hard mid-ingest kill."""
    root = str(tmp_path)
    env = os.environ.copy()
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    env["REPRO_TRACE_CACHE"] = "off"
    env["REPRO_FAULTS"] = "kill@segment.append;after=12"
    env["REPRO_FAULT_SEED"] = "1"
    crashed = subprocess.run(
        [sys.executable, _RUNNER, root],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert crashed.returncode == 3, crashed.stderr

    sys.path.insert(0, os.path.dirname(_RUNNER))
    try:
        import _ingest_runner as runner
    finally:
        sys.path.pop(0)

    begin = time.perf_counter()
    manifest = Manifest.load(root)
    recovered_rows = 0
    open_lines = 0
    for peer_as in runner.corpus_peers():
        recovery = recover_feed(root, f"peer-{peer_as}", manifest)
        recovered_rows += recovery.sealed_rows
        open_lines += len(recovery.open_lines)
    elapsed = time.perf_counter() - begin

    payload = {
        "feeds": len(manifest.feeds),
        "sealed_rows_recovered": recovered_rows,
        "open_lines_recovered": open_lines,
        "recovery_seconds": round(elapsed, 4),
        **bench_env(),
    }
    _record("ingest.recovery_after_kill", payload)
    print()
    print(
        f"  recovery: {payload['feeds']} feeds, {recovered_rows} sealed rows "
        f"+ {open_lines} open lines rebuilt in {elapsed * 1000:.1f}ms"
    )
    # Recovery is a directory sweep plus an append-log replay — it must be
    # far cheaper than re-ingesting (sub-second at this corpus size).
    assert elapsed < 5.0
