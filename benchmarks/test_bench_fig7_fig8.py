"""Benchmarks regenerating Fig. 7 (encoding) and Fig. 8 (learning time)."""

import pytest

from repro.experiments import fig7, fig8


@pytest.mark.slow
def test_bench_fig7_encoding_performance(benchmark, corpus):
    subset = corpus[:12]
    result = benchmark.pedantic(
        fig7.run,
        args=(subset,),
        kwargs={"bit_budgets": (13, 18, 23, 28), "prefix_threshold": 500},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig7.format_result(result))
    # More bits never hurt, and 18 bits already reroute the vast majority of
    # the predicted prefixes (paper: 98.7% median).
    medians = [result.median_at(bits) for bits in (13, 18, 23, 28)]
    assert medians == sorted(medians)
    assert result.median_at(18) >= 0.8


def test_bench_fig8_learning_time(benchmark, corpus):
    result = benchmark.pedantic(fig8.run, args=(corpus,), rounds=1, iterations=1)
    print()
    print(fig8.format_result(result))
    # SWIFT learns withdrawals faster than BGP at the median and p75
    # (paper: 2 s vs 13 s median, 9 s vs 32 s p75).
    assert result.median(swift=True) <= result.median(swift=False)
    assert result.p75(swift=True) <= result.p75(swift=False)
