"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Fit-score weights ``wWS : wPS`` — the paper calibrates 3:1; the ablation
  compares 1:1, 3:1 and 9:1.
* Encoding prefix-count threshold — the paper ignores links carrying fewer
  than 1,500 prefixes; the ablation sweeps the threshold.
"""

import pytest

from repro.core.fit_score import FitScoreConfig
from repro.core.inference import InferenceConfig
from repro.experiments import fig6, fig7
from repro.metrics.quadrants import Quadrant


def _config_with_weights(ws_weight: float, ps_weight: float) -> InferenceConfig:
    return InferenceConfig(fit_score=FitScoreConfig(ws_weight=ws_weight, ps_weight=ps_weight))


@pytest.mark.slow
def test_bench_ablation_fit_score_weights(benchmark, corpus):
    def run_ablation():
        results = {}
        for label, (ws, ps) in {"1:1": (1.0, 1.0), "3:1": (3.0, 1.0), "9:1": (9.0, 1.0)}.items():
            config = _config_with_weights(ws, ps)
            from repro.experiments.common import evaluate_burst

            points = []
            for burst in corpus:
                evaluation = evaluate_burst(burst, config=config)
                if evaluation.made_prediction:
                    points.append((evaluation.tpr, evaluation.fpr))
            from repro.metrics.quadrants import quadrant_shares

            results[label] = quadrant_shares(points)
        return results

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    for label, shares in results.items():
        print(
            f"  wWS:wPS={label}  good={shares[Quadrant.TOP_LEFT]:.2f}  "
            f"over={shares[Quadrant.TOP_RIGHT]:.2f}  "
            f"under={shares[Quadrant.BOTTOM_LEFT]:.2f}  "
            f"bad={shares[Quadrant.BOTTOM_RIGHT]:.2f}"
        )
    # The paper's 3:1 weighting should be at least as good as 1:1 on the
    # share of good inferences, and never produce bad inferences.
    assert results["3:1"][Quadrant.BOTTOM_RIGHT] == 0.0


@pytest.mark.slow
def test_bench_ablation_encoding_threshold(benchmark, corpus):
    subset = corpus[:8]

    def run_ablation():
        return {
            threshold: fig7.run(
                subset, bit_budgets=(18,), prefix_threshold=threshold
            ).median_at(18)
            for threshold in (200, 500, 1500, 5000)
        }

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    for threshold, median in sorted(results.items()):
        print(f"  prefix threshold {threshold:>5}: median encoding performance {median:.3f}")
    # Lower thresholds can only improve (or equal) coverage at a fixed budget
    # as long as the budget is not exhausted by light links.
    assert results[200] >= results[5000] - 0.25
