"""Benchmarks regenerating Fig. 9(a) (case study) and the §6.5 rule counts."""

import pytest

from repro.experiments import fig9, rerouting_speed


@pytest.mark.slow
def test_bench_fig9_case_study(benchmark):
    result = benchmark.pedantic(
        fig9.run, kwargs={"prefix_count": 120000}, rounds=1, iterations=1
    )
    print()
    print(fig9.format_result(result))
    # The SWIFTED deployment converges in a couple of seconds regardless of
    # the table size, while the vanilla router takes tens of seconds; the
    # paper reports a ~98% reduction at 290k prefixes.
    assert result.swift_convergence_seconds < 6.0
    assert result.speedup_percent > 85.0


def test_bench_rerouting_speed(benchmark, corpus):
    subset = corpus[:12]
    result = benchmark.pedantic(
        rerouting_speed.run, args=(subset,), kwargs={"backup_next_hops": 16},
        rounds=1, iterations=1,
    )
    print()
    print(rerouting_speed.format_result(result))
    # Few rules and sub-second data-plane updates (paper: 64 rules, ~130 ms).
    assert result.median_rules() <= 600
    assert result.median_update_seconds() < 0.5
