"""Benchmark regenerating Table 1 (vanilla router downtime vs burst size)."""

from repro.experiments import table1


def test_bench_table1(benchmark):
    result = benchmark.pedantic(
        table1.run,
        kwargs={"burst_sizes": (10000, 50000, 100000, 290000), "use_probes": False},
        rounds=1,
        iterations=1,
    )
    print()
    print(table1.format_result(result))
    # The shape must hold: roughly linear growth, ~109 s for 290k prefixes.
    assert result.downtime_of[290000] > 25 * result.downtime_of[10000]
    assert 60.0 < result.downtime_of[290000] < 220.0


def test_bench_table1_probe_replay(benchmark):
    """The probe-based replay (smaller sizes) agrees with the analytic model."""
    result = benchmark.pedantic(
        table1.run,
        kwargs={"burst_sizes": (10000, 50000), "use_probes": True},
        rounds=1,
        iterations=1,
    )
    print()
    print(table1.format_result(result))
    for size in (10000, 50000):
        assert abs(result.probe_max_downtime_of[size] - result.downtime_of[size]) < 1.0
