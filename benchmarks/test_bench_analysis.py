"""Static-analysis pass benchmark, recorded in ``BENCH_analysis.json``.

One number keeps the lint gate honest about its tier-1 budget: wall time
for a full :func:`repro.analysis.run_analysis` pass over src + tests +
benchmarks, alongside the coverage it bought (files scanned, rules run,
finding counts).  The gate test asserts the <5 s budget; this benchmark
records the actual cost so budget creep shows up in the artifact history
before it trips the assert.

Results merge into ``BENCH_analysis.json`` at the repository root with
the environment fields every ``BENCH_*.json`` carries (see
:func:`conftest.bench_env`).  Unlike the heavyweight suites this one is
cheap enough to run in the tier-1 default (no ``slow`` marker).
"""

import json
import os
import time

import pytest

from conftest import bench_env

from repro.analysis import run_analysis

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_analysis.json")


def _record(key, payload):
    """Merge one benchmark's results into BENCH_analysis.json."""
    data = {}
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.mark.analysis
def test_bench_analysis_full_pass():
    """Wall time of the full-tree analysis pass the tier-1 gate runs."""
    begin = time.perf_counter()
    report = run_analysis(
        paths=["src", "tests", "benchmarks"], root=_REPO_ROOT
    )
    elapsed = time.perf_counter() - begin

    assert report.ok, "\n".join(f.format() for f in report.findings)
    payload = {
        "files_scanned": report.files_scanned,
        "rules": report.rules,
        "findings": len(report.findings),
        "baselined": len(report.baselined),
        "stale_baseline": len(report.stale_baseline),
        "wall_seconds": round(elapsed, 3),
        "files_per_second": round(report.files_scanned / elapsed, 1),
        **bench_env(),
    }
    _record("analysis.full_pass", payload)
    print()
    print(
        f"  analysis: {report.files_scanned} files x {len(report.rules)} rules "
        f"in {elapsed:.2f}s -> {payload['files_per_second']} files/s, "
        f"{payload['findings']} findings ({payload['baselined']} baselined)"
    )
